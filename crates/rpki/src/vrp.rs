//! Validated ROA Payloads and the indexed VRP set.

use crate::roa::Roa;
use manrs_net::{AddressSpace, Asn, Prefix, PrefixMap};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Validated ROA Payload: the (prefix, asn, maxLength) triple emitted by
/// relying-party software after certificate-chain validation (RFC 6811 §2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Vrp {
    /// The authorized prefix.
    pub prefix: Prefix,
    /// The authorized origin AS.
    pub asn: Asn,
    /// Maximum announced prefix length.
    pub max_length: u8,
}

impl Vrp {
    /// Creates a VRP. Invariants are assumed already checked (VRPs come
    /// out of validated [`Roa`]s).
    pub fn new(prefix: Prefix, asn: Asn, max_length: u8) -> Self {
        debug_assert!(max_length >= prefix.len());
        Vrp { prefix, asn, max_length }
    }

    /// `true` if this VRP covers `prefix` (the VRP prefix contains it).
    pub fn covers(&self, prefix: &Prefix) -> bool {
        self.prefix.contains(prefix)
    }

    /// `true` if this VRP *matches* a route `(prefix, origin)`: it covers
    /// the prefix, the ASN matches (and is not AS0), and the announced
    /// length does not exceed maxLength (RFC 6811 §2).
    pub fn matches(&self, prefix: &Prefix, origin: Asn) -> bool {
        !self.asn.is_zero()
            && self.asn == origin
            && self.covers(prefix)
            && prefix.len() <= self.max_length
    }
}

impl From<&Roa> for Vrp {
    fn from(roa: &Roa) -> Self {
        Vrp { prefix: roa.prefix, asn: roa.asn, max_length: roa.max_length }
    }
}

impl fmt::Display for Vrp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> {} maxlen {}", self.prefix, self.asn, self.max_length)
    }
}

/// A set of VRPs indexed by prefix for O(prefix-length) covering queries.
///
/// This is the data structure every route origin validation consults; see
/// [`crate::validate_origin`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VrpSet {
    map: PrefixMap<Vrp>,
}

impl VrpSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of VRPs in the set.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the set holds no VRPs.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds a VRP.
    pub fn insert(&mut self, vrp: Vrp) {
        self.map.insert(vrp.prefix, vrp);
    }

    /// Removes at most one VRP equal to `vrp`; returns whether one was
    /// removed. Identical ROAs produce identical VRPs that the set keeps
    /// as duplicates, so incremental maintenance (one ROA revoked, its
    /// twin still valid) must retract exactly one copy.
    pub fn remove_one(&mut self, vrp: &Vrp) -> bool {
        let mut removed = false;
        self.map.remove_where(&vrp.prefix, |v| {
            if !removed && v == vrp {
                removed = true;
                true
            } else {
                false
            }
        });
        removed
    }

    /// All VRPs whose prefix covers `prefix` — the covering-VRP set of
    /// RFC 6811.
    pub fn covering(&self, prefix: &Prefix) -> Vec<&Vrp> {
        self.map.covering(prefix)
    }

    /// `true` if at least one VRP covers `prefix`. Non-allocating: this
    /// tests path emptiness in the trie without collecting the VRPs.
    pub fn is_covered(&self, prefix: &Prefix) -> bool {
        self.map.covers(prefix)
    }

    /// The underlying prefix trie, for compiling batch indexes.
    pub(crate) fn prefix_map(&self) -> &PrefixMap<Vrp> {
        &self.map
    }

    /// Every VRP in the set.
    pub fn iter(&self) -> Vec<&Vrp> {
        self.map.values()
    }

    /// The address space covered by all VRP prefixes — the numerator of
    /// the paper's RPKI saturation metric (Eq. 7–8) is the intersection of
    /// this with the routed space.
    pub fn covered_space(&self) -> AddressSpace {
        let mut space = AddressSpace::new();
        self.map.for_each(|vrp| space.add(&vrp.prefix));
        space
    }
}

impl FromIterator<Vrp> for VrpSet {
    fn from_iter<I: IntoIterator<Item = Vrp>>(iter: I) -> Self {
        let mut set = VrpSet::new();
        for vrp in iter {
            set.insert(vrp);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn matches_requires_all_three() {
        let vrp = Vrp::new(p("10.0.0.0/16"), Asn(1), 20);
        assert!(vrp.matches(&p("10.0.0.0/16"), Asn(1)));
        assert!(vrp.matches(&p("10.0.128.0/20"), Asn(1)));
        assert!(!vrp.matches(&p("10.0.128.0/21"), Asn(1))); // too specific
        assert!(!vrp.matches(&p("10.0.0.0/16"), Asn(2))); // wrong origin
        assert!(!vrp.matches(&p("11.0.0.0/16"), Asn(1))); // not covered
    }

    #[test]
    fn as0_never_matches() {
        let vrp = Vrp::new(p("10.0.0.0/16"), Asn::ZERO, 24);
        assert!(!vrp.matches(&p("10.0.0.0/16"), Asn::ZERO));
        assert!(vrp.covers(&p("10.0.0.0/16")));
    }

    #[test]
    fn set_covering_queries() {
        let set: VrpSet = vec![
            Vrp::new(p("10.0.0.0/8"), Asn(1), 16),
            Vrp::new(p("10.1.0.0/16"), Asn(2), 16),
            Vrp::new(p("192.0.2.0/24"), Asn(3), 24),
        ]
        .into_iter()
        .collect();
        assert_eq!(set.len(), 3);
        assert_eq!(set.covering(&p("10.1.0.0/16")).len(), 2);
        assert_eq!(set.covering(&p("10.2.0.0/16")).len(), 1);
        assert!(set.is_covered(&p("192.0.2.128/25")));
        assert!(!set.is_covered(&p("198.51.100.0/24")));
    }

    #[test]
    fn covered_space_deduplicates() {
        let set: VrpSet = vec![
            Vrp::new(p("10.0.0.0/8"), Asn(1), 16),
            Vrp::new(p("10.0.0.0/16"), Asn(2), 16), // nested
        ]
        .into_iter()
        .collect();
        assert_eq!(set.covered_space().v4_len(), 1 << 24);
    }

    #[test]
    fn remove_one_takes_a_single_duplicate() {
        let mut set = VrpSet::new();
        let vrp = Vrp::new(p("10.0.0.0/16"), Asn(1), 24);
        set.insert(vrp);
        set.insert(vrp); // twin registration from an identical ROA
        set.insert(Vrp::new(p("10.0.0.0/16"), Asn(2), 16));
        assert_eq!(set.len(), 3);
        assert!(set.remove_one(&vrp));
        assert_eq!(set.len(), 2, "only one duplicate goes");
        assert!(set.remove_one(&vrp));
        assert!(!set.remove_one(&vrp), "no copies left");
        assert_eq!(set.len(), 1);
        assert!(!set.remove_one(&Vrp::new(p("11.0.0.0/16"), Asn(1), 16)));
    }

    #[test]
    fn vrp_from_roa() {
        let roa = Roa::new(
            p("10.0.0.0/16"),
            Asn(5),
            24,
            manrs_net::Date::ymd(2021, 1, 1),
            manrs_net::Date::ymd(2023, 1, 1),
        )
        .unwrap();
        let vrp = Vrp::from(&roa);
        assert_eq!(vrp.prefix, roa.prefix);
        assert_eq!(vrp.asn, roa.asn);
        assert_eq!(vrp.max_length, 24);
    }
}
