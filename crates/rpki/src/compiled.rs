//! Compiled, batch-oriented route origin validation.
//!
//! [`crate::validate_origin`] answers one (prefix, origin) query with one
//! allocating trie walk — the right shape for interactive lookups, the
//! wrong one for full-table workloads where millions of pairs are
//! validated against the same frozen [`VrpSet`]. [`CompiledVrpIndex`]
//! freezes the set into the flattened form of
//! [`manrs_net::CoveringShape`]: the covering-VRP candidates of every
//! trie path live as one contiguous run in a struct-of-arrays arena
//! (`asns`, `max_lens`), so a covering query is an offset range and the
//! RFC 6811 predicates sweep over dense lanes via
//! [`manrs_net::match_run`].
//!
//! Batches additionally sort queries by prefix (reusable
//! [`BatchScratch`] argsort), so all origins announced for the same
//! prefix share one index descent. Steady-state batched validation
//! performs zero allocations. The scalar [`crate::validate_origin`]
//! stays untouched as the oracle; proptests in `tests/props.rs` pin the
//! two bit-for-bit equal.

use crate::validation::RpkiStatus;
use crate::vrp::{Vrp, VrpSet};
use manrs_net::{match_run, Asn, BatchScratch, CoveringShape, PatchStats, Prefix};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// Fragmentation ratio past which a successful
/// [`CompiledVrpIndex::apply_roa_delta`] compacts the arena. Splices
/// abandon at most a handful of slots each and re-splicing the same run
/// settles at the arena tail (no further waste), so in steady state the
/// ratio plateaus well below this; crossing it means sustained churn
/// across many distinct runs, where one O(arena) compaction buys back
/// both memory and kernel sweep density.
const COMPACT_FRAGMENTATION: f64 = 0.5;

/// A frozen [`VrpSet`] compiled for batched RFC 6811 validation.
///
/// Build cost is one deterministic trie traversal; afterwards every
/// query is allocation-free. The index is a snapshot: mutating the
/// source set does **not** update it. Single-ROA churn can be mirrored
/// in place with [`CompiledVrpIndex::apply_roa_delta`]; structural
/// churn calls for a rebuild (see `manrs_scenario::engine` for the
/// patch-vs-rebuild cost model).
///
/// ```
/// use manrs_net::{Asn, Prefix};
/// use manrs_rpki::{CompiledVrpIndex, RpkiStatus, Vrp, VrpSet};
///
/// let set: VrpSet = [Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(64496), 20)]
///     .into_iter().collect();
/// let index = CompiledVrpIndex::build(&set);
/// let q: Prefix = "10.0.0.0/20".parse().unwrap();
/// assert_eq!(index.validate(&q, Asn(64496)), RpkiStatus::Valid);
/// let statuses = index.validate_batch(&[(q, Asn(64496)), (q, Asn(64497))]);
/// assert_eq!(statuses, vec![RpkiStatus::Valid, RpkiStatus::InvalidAsn]);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompiledVrpIndex {
    shape: CoveringShape,
    /// Candidate origin ASNs, arena order (parallel to `max_lens`).
    asns: Vec<u32>,
    /// Candidate maxLength values, arena order.
    max_lens: Vec<u8>,
}

impl CompiledVrpIndex {
    /// Compiles `set` into a batch index. Deterministic: two builds from
    /// the same set produce identical indexes.
    pub fn build(set: &VrpSet) -> Self {
        let mut asns = Vec::new();
        let mut max_lens = Vec::new();
        let shape = set.prefix_map().flatten_shape(|vrp| {
            asns.push(vrp.asn.value());
            max_lens.push(vrp.max_length);
        });
        debug_assert_eq!(asns.len(), shape.arena_len());
        CompiledVrpIndex { shape, asns, max_lens }
    }

    /// Compiles only the VRPs whose prefix satisfies `keep` — the
    /// shard-aware constructor behind the snapshot query service.
    ///
    /// For a query set routed such that every VRP able to cover a query
    /// is kept (the [`manrs_net::shard_bucket_span`] contract), the
    /// filtered index classifies those queries bit-for-bit identically
    /// to the full [`CompiledVrpIndex::build`].
    pub fn build_where<F: FnMut(&Prefix) -> bool>(set: &VrpSet, mut keep: F) -> Self {
        let mut subset = VrpSet::new();
        for vrp in set.iter() {
            if keep(&vrp.prefix) {
                subset.insert(*vrp);
            }
        }
        CompiledVrpIndex::build(&subset)
    }

    /// Number of live arena candidates (covering closures expanded, so
    /// this is ≥ the source set's `len`; patch-abandoned slots are not
    /// counted).
    pub fn candidate_count(&self) -> usize {
        self.shape.live_len()
    }

    /// Splices one VRP addition (`added = true`) or removal into the
    /// compiled form, exactly mirroring [`VrpSet::insert`] /
    /// [`VrpSet::remove_one`] on the source set — one candidate copy per
    /// call. Returns `false` when the splice cannot be applied (index
    /// overflow, or removing a VRP the index never held): the index must
    /// then be discarded and rebuilt from the source set.
    ///
    /// Patching preserves validation outcomes, not arena layout; a
    /// patched index and a fresh [`CompiledVrpIndex::build`] classify
    /// every query identically. Crossing [`COMPACT_FRAGMENTATION`]
    /// triggers an automatic compaction.
    pub fn apply_roa_delta(&mut self, vrp: &Vrp, added: bool) -> bool {
        self.apply_roa_delta_stats(vrp, added).is_some()
    }

    /// [`CompiledVrpIndex::apply_roa_delta`] with its work made visible:
    /// on success, returns the splice's [`PatchStats`] and whether the
    /// splice pushed fragmentation over the threshold and triggered an
    /// automatic compaction — the counters `BENCH_service.json` and
    /// `profile_batch --patch` report.
    pub fn apply_roa_delta_stats(&mut self, vrp: &Vrp, added: bool) -> Option<(PatchStats, bool)> {
        let value = (vrp.asn.value(), vrp.max_length);
        let cols = (&mut self.asns, &mut self.max_lens);
        let stats = if added {
            self.shape.patch_insert(&vrp.prefix, value, cols)?
        } else {
            self.shape.patch_remove(&vrp.prefix, value, cols)?
        };
        let compacted = self.shape.fragmentation() > COMPACT_FRAGMENTATION;
        if compacted {
            self.shape.compact((&mut self.asns, &mut self.max_lens));
        }
        Some((stats, compacted))
    }

    /// [`CompiledVrpIndex::apply_roa_delta_stats`] with the automatic
    /// compaction suppressed: the caller owns the compaction policy.
    ///
    /// Compaction allocates, so a splice loop that must stay
    /// allocation-free once warm (the adoption-sweep overlay path)
    /// cannot afford it firing mid-run. A caller that periodically
    /// re-anchors the arena with [`CompiledVrpIndex::restore_from`]
    /// never accumulates fragmentation across runs, making the
    /// automatic trigger pure overhead; one that does not should stick
    /// with [`CompiledVrpIndex::apply_roa_delta_stats`].
    pub fn apply_roa_delta_deferred(&mut self, vrp: &Vrp, added: bool) -> Option<PatchStats> {
        let value = (vrp.asn.value(), vrp.max_length);
        let cols = (&mut self.asns, &mut self.max_lens);
        if added {
            self.shape.patch_insert(&vrp.prefix, value, cols)
        } else {
            self.shape.patch_remove(&vrp.prefix, value, cols)
        }
    }

    /// Share of the arena abandoned by patches (see
    /// [`CoveringShape::fragmentation`]).
    pub fn fragmentation(&self) -> f64 {
        self.shape.fragmentation()
    }

    /// Pre-reserves arena capacity for `slots` future splice slots so a
    /// bounded run of [`CompiledVrpIndex::apply_roa_delta`] calls
    /// performs no allocation.
    pub fn reserve_headroom(&mut self, slots: usize) {
        self.asns.reserve(slots);
        self.max_lens.reserve(slots);
    }

    /// Overwrites this index with `base`'s exact state in place,
    /// reusing existing capacity (see
    /// [`manrs_net::CoveringShape::restore_from`]). Sweep workspaces
    /// call this after un-splicing a trial's deltas: the removals
    /// already restored validation outcomes, and the re-anchor resets
    /// the arena *layout* so patch-abandoned slots never accumulate
    /// across trials. Allocation-free for an index cloned from `base`.
    pub fn restore_from(&mut self, base: &Self) {
        self.shape.restore_from(&base.shape);
        self.asns.clone_from(&base.asns);
        self.max_lens.clone_from(&base.max_lens);
    }

    /// `true` if at least one VRP covers `prefix`.
    pub fn is_covered(&self, prefix: &Prefix) -> bool {
        self.shape.covers(prefix)
    }

    #[inline]
    fn status_for(&self, run: Range<usize>, origin: Asn, query_len: u8) -> RpkiStatus {
        if run.is_empty() {
            return RpkiStatus::NotFound;
        }
        let out = match_run::<true>(
            &self.asns[run.clone()],
            &self.max_lens[run],
            origin,
            query_len,
        );
        if out.any_valid {
            RpkiStatus::Valid
        } else if out.any_origin_match {
            RpkiStatus::InvalidLength
        } else {
            RpkiStatus::InvalidAsn
        }
    }

    /// Validates one route; equivalent to
    /// [`crate::validate_origin`] on the source set, without allocating.
    #[inline]
    pub fn validate(&self, prefix: &Prefix, origin: Asn) -> RpkiStatus {
        self.status_for(self.shape.covering_run(prefix), origin, prefix.len())
    }

    /// Validates a batch of routes; `statuses[i]` corresponds to
    /// `queries[i]`. Convenience wrapper over
    /// [`CompiledVrpIndex::validate_batch_into`] with fresh scratch.
    pub fn validate_batch(&self, queries: &[(Prefix, Asn)]) -> Vec<RpkiStatus> {
        let mut out = Vec::new();
        self.validate_batch_into(queries, &mut BatchScratch::new(), &mut out);
        out
    }

    /// Validates a batch of routes into a reused output buffer.
    ///
    /// Queries are processed in prefix-sorted order so one trie descent
    /// serves every origin of the same prefix, but `out[i]` always
    /// corresponds to `queries[i]`. With warm `scratch` and `out`
    /// buffers this performs no allocation.
    pub fn validate_batch_into(
        &self,
        queries: &[(Prefix, Asn)],
        scratch: &mut BatchScratch,
        out: &mut Vec<RpkiStatus>,
    ) {
        out.clear();
        out.resize(queries.len(), RpkiStatus::NotFound);
        scratch.covering_runs(&self.shape, queries, |i, run| {
            let (prefix, origin) = queries[i];
            out[i] = self.status_for(run, origin, prefix.len());
        });
    }
}

impl From<&VrpSet> for CompiledVrpIndex {
    fn from(set: &VrpSet) -> Self {
        CompiledVrpIndex::build(set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validation::validate_origin;
    use crate::vrp::Vrp;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn sample_set() -> VrpSet {
        [
            Vrp::new(p("10.0.0.0/8"), Asn(9), 8),
            Vrp::new(p("10.0.0.0/16"), Asn(1), 20),
            Vrp::new(p("10.0.0.0/16"), Asn(2), 16),
            Vrp::new(p("203.0.113.0/24"), Asn::ZERO, 24),
            Vrp::new(p("2001:db8::/32"), Asn(1), 48),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn single_queries_match_scalar_oracle() {
        let set = sample_set();
        let index = CompiledVrpIndex::build(&set);
        for q in [
            "10.0.0.0/16",
            "10.0.0.0/20",
            "10.0.0.0/24",
            "10.5.0.0/16",
            "10.0.0.0/8",
            "10.0.0.0/7",
            "203.0.113.0/24",
            "192.0.2.0/24",
            "2001:db8::/48",
            "2001:db8::/64",
            "2001:db9::/32",
        ] {
            for origin in [0u32, 1, 2, 9, 77] {
                let q = p(q);
                assert_eq!(
                    index.validate(&q, Asn(origin)),
                    validate_origin(&set, &q, Asn(origin)),
                    "query {q} origin {origin}"
                );
            }
        }
    }

    #[test]
    fn batch_preserves_input_order() {
        let set = sample_set();
        let index = CompiledVrpIndex::build(&set);
        let queries = vec![
            (p("203.0.113.0/24"), Asn(7)),
            (p("10.0.0.0/20"), Asn(1)),
            (p("192.0.2.0/24"), Asn(1)),
            (p("10.0.0.0/20"), Asn(2)),
            (p("10.0.0.0/16"), Asn(2)),
        ];
        let statuses = index.validate_batch(&queries);
        let expected: Vec<RpkiStatus> = queries
            .iter()
            .map(|(q, o)| validate_origin(&set, q, *o))
            .collect();
        assert_eq!(statuses, expected);
        assert_eq!(
            statuses,
            vec![
                RpkiStatus::InvalidAsn,
                RpkiStatus::Valid,
                RpkiStatus::NotFound,
                RpkiStatus::InvalidLength,
                RpkiStatus::Valid,
            ]
        );
    }

    #[test]
    fn empty_set_and_empty_batch() {
        let index = CompiledVrpIndex::build(&VrpSet::new());
        assert_eq!(index.candidate_count(), 0);
        assert_eq!(index.validate(&p("10.0.0.0/8"), Asn(1)), RpkiStatus::NotFound);
        assert!(index.validate_batch(&[]).is_empty());
        assert!(!index.is_covered(&p("10.0.0.0/8")));
    }

    #[test]
    fn build_is_deterministic() {
        let set = sample_set();
        assert_eq!(CompiledVrpIndex::build(&set), CompiledVrpIndex::build(&set));
        assert_eq!(CompiledVrpIndex::from(&set), CompiledVrpIndex::build(&set));
    }

    #[test]
    fn roa_deltas_match_rebuild() {
        let mut set = sample_set();
        let mut index = CompiledVrpIndex::build(&set);
        let deltas = [
            (Vrp::new(p("10.0.0.0/24"), Asn(5), 28), true),
            (Vrp::new(p("10.0.0.0/16"), Asn(1), 20), false),
            (Vrp::new(p("192.0.2.0/24"), Asn(6), 24), true),
            (Vrp::new(p("2001:db8::/32"), Asn(1), 48), false),
            (Vrp::new(p("10.0.0.0/16"), Asn(1), 24), true),
        ];
        for (vrp, added) in deltas {
            if added {
                set.insert(vrp);
            } else {
                assert!(set.remove_one(&vrp));
            }
            assert!(index.apply_roa_delta(&vrp, added), "delta {vrp:?}");
            let rebuilt = CompiledVrpIndex::build(&set);
            assert_eq!(index.candidate_count(), rebuilt.candidate_count());
            for q in ["10.0.0.0/16", "10.0.0.0/20", "10.0.0.0/28", "192.0.2.0/28", "2001:db8::/48"]
            {
                for origin in [0u32, 1, 2, 5, 6, 9] {
                    let q = p(q);
                    assert_eq!(
                        index.validate(&q, Asn(origin)),
                        rebuilt.validate(&q, Asn(origin)),
                        "query {q} origin {origin} after {vrp:?}"
                    );
                }
            }
        }
        // Removing something the index never held reports failure.
        assert!(!index.apply_roa_delta(&Vrp::new(p("198.51.100.0/24"), Asn(1), 24), false));
    }

    #[test]
    fn build_where_matches_full_index_on_kept_space() {
        use manrs_net::shard_bucket_span;
        let set = sample_set();
        let full = CompiledVrpIndex::build(&set);
        // Keep only candidates whose octet span touches bucket 10 (the
        // 10.0.0.0/8 slice); every 10.x query must classify identically.
        let sliced = CompiledVrpIndex::build_where(&set, |p| {
            let (lo, hi) = shard_bucket_span(p);
            lo <= 10 && 10 <= hi
        });
        assert!(sliced.candidate_count() < full.candidate_count());
        for q in ["10.0.0.0/16", "10.0.0.0/20", "10.0.0.0/24", "10.5.0.0/16", "10.0.0.0/8"] {
            for origin in [0u32, 1, 2, 9, 77] {
                let q = p(q);
                assert_eq!(sliced.validate(&q, Asn(origin)), full.validate(&q, Asn(origin)));
            }
        }
        // An all-pass filter reproduces the full index exactly.
        assert_eq!(CompiledVrpIndex::build_where(&set, |_| true), full);
    }

    #[test]
    fn delta_stats_report_work_and_compactions() {
        let set = sample_set();
        let mut index = CompiledVrpIndex::build(&set);
        let vrp = Vrp::new(p("10.0.0.0/24"), Asn(5), 28);
        let (stats, compacted) =
            index.apply_roa_delta_stats(&vrp, true).expect("insert splices");
        assert!(stats.spine_steps > 0, "a splice walks the spine: {stats:?}");
        assert!(!compacted, "one insert cannot cross the fragmentation threshold");
        // Failure surfaces as None, same contract as the bool form.
        assert!(index
            .apply_roa_delta_stats(&Vrp::new(p("198.51.100.0/24"), Asn(1), 24), false)
            .is_none());
    }

    #[test]
    fn batch_into_reuses_buffers() {
        let set = sample_set();
        let index = CompiledVrpIndex::build(&set);
        let mut scratch = BatchScratch::new();
        let mut out = Vec::new();
        let queries = vec![(p("10.0.0.0/16"), Asn(1)), (p("10.0.0.0/16"), Asn(9))];
        index.validate_batch_into(&queries, &mut scratch, &mut out);
        assert_eq!(out, vec![RpkiStatus::Valid, RpkiStatus::InvalidLength]);
        index.validate_batch_into(&queries[..1], &mut scratch, &mut out);
        assert_eq!(out, vec![RpkiStatus::Valid]);
    }
}
