//! RFC 6811 route origin validation.

use crate::vrp::VrpSet;
use manrs_net::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The RPKI validation state of a (prefix, origin) pair, per RFC 6811 as
/// refined by the paper's §6.1 classification:
///
/// * `Valid` — at least one covering VRP matches prefix, ASN, and
///   maxLength.
/// * `InvalidLength` — at least one covering VRP has a matching ASN, but
///   the announcement is more specific than its maxLength allows.
/// * `InvalidAsn` — covering VRPs exist, but none has a matching ASN
///   (AS0 ROAs always land here).
/// * `NotFound` — no covering VRP exists.
///
/// `InvalidLength` takes precedence over `InvalidAsn` when both kinds of
/// covering VRPs exist, matching the paper's classification ("if at least
/// one VRP has a matching ASN but the max length attribute is not covering
/// the route, then the route is classified as Invalid Length").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RpkiStatus {
    /// Matched by a covering VRP.
    Valid,
    /// Covered, matching ASN exists, but announced length exceeds maxLength.
    InvalidLength,
    /// Covered, but no covering VRP authorizes this origin AS.
    InvalidAsn,
    /// No covering VRP.
    NotFound,
}

impl RpkiStatus {
    /// `true` for either invalid state.
    pub const fn is_invalid(self) -> bool {
        matches!(self, RpkiStatus::InvalidAsn | RpkiStatus::InvalidLength)
    }

    /// ROV-filtering networks drop announcements in either invalid state
    /// while letting `NotFound` through (§8.1).
    pub const fn dropped_by_rov(self) -> bool {
        self.is_invalid()
    }
}

impl std::str::FromStr for RpkiStatus {
    type Err = manrs_net::NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace(' ', "-").as_str() {
            "valid" => Ok(RpkiStatus::Valid),
            "invalid-length" | "invalid-prefix-length" => Ok(RpkiStatus::InvalidLength),
            "invalid-asn" | "invalid" => Ok(RpkiStatus::InvalidAsn),
            "notfound" | "not-found" => Ok(RpkiStatus::NotFound),
            _ => Err(manrs_net::NetError::InvalidAddress(s.to_owned())),
        }
    }
}

impl fmt::Display for RpkiStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RpkiStatus::Valid => "Valid",
            RpkiStatus::InvalidLength => "Invalid Length",
            RpkiStatus::InvalidAsn => "Invalid ASN",
            RpkiStatus::NotFound => "NotFound",
        })
    }
}

/// Validates a route `(prefix, origin)` against the VRP set, per RFC 6811.
///
/// ```
/// use manrs_net::{Asn, Prefix};
/// use manrs_rpki::{validate_origin, RpkiStatus, Vrp, VrpSet};
///
/// let set: VrpSet = [Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(64496), 20)]
///     .into_iter().collect();
/// let p: Prefix = "10.0.0.0/16".parse().unwrap();
/// assert_eq!(validate_origin(&set, &p, Asn(64496)), RpkiStatus::Valid);
/// assert_eq!(validate_origin(&set, &p, Asn(64497)), RpkiStatus::InvalidAsn);
/// let specific: Prefix = "10.0.0.0/24".parse().unwrap();
/// assert_eq!(validate_origin(&set, &specific, Asn(64496)), RpkiStatus::InvalidLength);
/// let other: Prefix = "192.0.2.0/24".parse().unwrap();
/// assert_eq!(validate_origin(&set, &other, Asn(64496)), RpkiStatus::NotFound);
/// ```
pub fn validate_origin(vrps: &VrpSet, prefix: &Prefix, origin: Asn) -> RpkiStatus {
    let covering = vrps.covering(prefix);
    if covering.is_empty() {
        return RpkiStatus::NotFound;
    }
    let mut saw_matching_asn = false;
    for vrp in covering {
        if vrp.matches(prefix, origin) {
            return RpkiStatus::Valid;
        }
        if !vrp.asn.is_zero() && vrp.asn == origin {
            saw_matching_asn = true;
        }
    }
    if saw_matching_asn {
        RpkiStatus::InvalidLength
    } else {
        RpkiStatus::InvalidAsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vrp::Vrp;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn set(vrps: &[Vrp]) -> VrpSet {
        vrps.iter().copied().collect()
    }

    #[test]
    fn not_found_when_uncovered() {
        let s = set(&[Vrp::new(p("10.0.0.0/16"), Asn(1), 16)]);
        assert_eq!(validate_origin(&s, &p("11.0.0.0/16"), Asn(1)), RpkiStatus::NotFound);
        // A *less specific* announcement is not covered either.
        assert_eq!(validate_origin(&s, &p("10.0.0.0/8"), Asn(1)), RpkiStatus::NotFound);
    }

    #[test]
    fn valid_beats_everything() {
        // One VRP matches, another covers with a different ASN: Valid wins.
        let s = set(&[
            Vrp::new(p("10.0.0.0/8"), Asn(2), 16),
            Vrp::new(p("10.0.0.0/16"), Asn(1), 16),
        ]);
        assert_eq!(validate_origin(&s, &p("10.0.0.0/16"), Asn(1)), RpkiStatus::Valid);
        assert_eq!(validate_origin(&s, &p("10.0.0.0/16"), Asn(2)), RpkiStatus::Valid);
    }

    #[test]
    fn invalid_length_takes_precedence_over_invalid_asn() {
        let s = set(&[
            Vrp::new(p("10.0.0.0/8"), Asn(9), 8), // wrong ASN for our origin
            Vrp::new(p("10.0.0.0/16"), Asn(1), 16), // right ASN, maxlen too short
        ]);
        assert_eq!(validate_origin(&s, &p("10.0.0.0/24"), Asn(1)), RpkiStatus::InvalidLength);
    }

    #[test]
    fn invalid_asn_when_no_matching_origin() {
        let s = set(&[Vrp::new(p("10.0.0.0/16"), Asn(1), 24)]);
        assert_eq!(validate_origin(&s, &p("10.0.0.0/24"), Asn(2)), RpkiStatus::InvalidAsn);
    }

    #[test]
    fn as0_roa_invalidates_everyone() {
        let s = set(&[Vrp::new(p("203.0.113.0/24"), Asn::ZERO, 24)]);
        assert_eq!(validate_origin(&s, &p("203.0.113.0/24"), Asn(7)), RpkiStatus::InvalidAsn);
        assert_eq!(
            validate_origin(&s, &p("203.0.113.0/24"), Asn::ZERO),
            RpkiStatus::InvalidAsn
        );
    }

    #[test]
    fn max_length_boundary() {
        let s = set(&[Vrp::new(p("10.0.0.0/16"), Asn(1), 20)]);
        assert_eq!(validate_origin(&s, &p("10.0.0.0/20"), Asn(1)), RpkiStatus::Valid);
        assert_eq!(validate_origin(&s, &p("10.0.0.0/21"), Asn(1)), RpkiStatus::InvalidLength);
    }

    #[test]
    fn exact_match_at_full_length() {
        let s = set(&[Vrp::new(p("192.0.2.1/32"), Asn(1), 32)]);
        assert_eq!(validate_origin(&s, &p("192.0.2.1/32"), Asn(1)), RpkiStatus::Valid);
    }

    #[test]
    fn v6_validation() {
        let s = set(&[Vrp::new(p("2001:db8::/32"), Asn(1), 48)]);
        assert_eq!(validate_origin(&s, &p("2001:db8::/48"), Asn(1)), RpkiStatus::Valid);
        assert_eq!(validate_origin(&s, &p("2001:db8::/64"), Asn(1)), RpkiStatus::InvalidLength);
        assert_eq!(validate_origin(&s, &p("2001:db9::/48"), Asn(1)), RpkiStatus::NotFound);
    }

    #[test]
    fn status_display_parse_round_trip() {
        for status in [
            RpkiStatus::Valid,
            RpkiStatus::InvalidLength,
            RpkiStatus::InvalidAsn,
            RpkiStatus::NotFound,
        ] {
            let parsed: RpkiStatus = status.to_string().parse().unwrap();
            assert_eq!(parsed, status);
        }
        assert!("martian".parse::<RpkiStatus>().is_err());
    }

    #[test]
    fn status_predicates() {
        assert!(RpkiStatus::InvalidAsn.is_invalid());
        assert!(RpkiStatus::InvalidLength.is_invalid());
        assert!(!RpkiStatus::Valid.is_invalid());
        assert!(!RpkiStatus::NotFound.is_invalid());
        assert!(RpkiStatus::InvalidAsn.dropped_by_rov());
        assert!(!RpkiStatus::NotFound.dropped_by_rov());
    }
}
