//! Route Origin Authorization objects.

use manrs_net::{Asn, Date, NetError, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Route Origin Authorization: "origin `asn` is authorized to announce
/// `prefix` at lengths up to `max_length`".
///
/// Real ROAs may authorize several prefixes in one signed object; the
/// paper (and relying-party output) works at the granularity of one
/// (prefix, asn, maxLength) triple, so this type models one authorization.
/// An `asn` of [`Asn::ZERO`] is an *AS0 ROA*: it makes every announcement
/// of the prefix RPKI-Invalid (the paper's §8.1 Indonesian-ISP case study).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Roa {
    /// The authorized prefix.
    pub prefix: Prefix,
    /// The authorized origin AS (AS0 = nobody may originate).
    pub asn: Asn,
    /// Maximum announced prefix length; always ≥ `prefix.len()`.
    pub max_length: u8,
    /// Start of the validity window (inclusive).
    pub not_before: Date,
    /// End of the validity window (inclusive).
    pub not_after: Date,
}

impl Roa {
    /// Creates a ROA, validating that `max_length` is within
    /// `[prefix.len(), family width]`.
    pub fn new(
        prefix: Prefix,
        asn: Asn,
        max_length: u8,
        not_before: Date,
        not_after: Date,
    ) -> Result<Self, NetError> {
        if max_length < prefix.len() {
            return Err(NetError::MaxLengthTooShort {
                prefix_len: prefix.len(),
                max_len: max_length,
            });
        }
        let width = prefix.family().width();
        if max_length > width {
            return Err(NetError::InvalidLength { len: max_length as u16, max: width });
        }
        Ok(Roa { prefix, asn, max_length, not_before, not_after })
    }

    /// A ROA with `max_length == prefix.len()` (the recommended practice:
    /// no de-aggregation allowed).
    pub fn exact(prefix: Prefix, asn: Asn, not_before: Date, not_after: Date) -> Self {
        Roa { prefix, asn, max_length: prefix.len(), not_before, not_after }
    }

    /// `true` if the validity window contains `date`.
    pub fn is_current(&self, date: Date) -> bool {
        self.not_before <= date && date <= self.not_after
    }
}

impl fmt::Display for Roa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ROA {} -> {} maxlen {}", self.prefix, self.asn, self.max_length)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn window() -> (Date, Date) {
        (Date::ymd(2021, 1, 1), Date::ymd(2023, 1, 1))
    }

    #[test]
    fn rejects_short_max_length() {
        let (nb, na) = window();
        assert_eq!(
            Roa::new(p("10.0.0.0/16"), Asn(1), 8, nb, na),
            Err(NetError::MaxLengthTooShort { prefix_len: 16, max_len: 8 })
        );
    }

    #[test]
    fn rejects_overlong_max_length() {
        let (nb, na) = window();
        assert!(Roa::new(p("10.0.0.0/16"), Asn(1), 33, nb, na).is_err());
        assert!(Roa::new(p("2001:db8::/32"), Asn(1), 129, nb, na).is_err());
        // 33 is fine for v6.
        assert!(Roa::new(p("2001:db8::/32"), Asn(1), 48, nb, na).is_ok());
    }

    #[test]
    fn exact_pins_max_length() {
        let (nb, na) = window();
        let roa = Roa::exact(p("192.0.2.0/24"), Asn(64_496), nb, na);
        assert_eq!(roa.max_length, 24);
    }

    #[test]
    fn validity_window() {
        let (nb, na) = window();
        let roa = Roa::exact(p("192.0.2.0/24"), Asn(1), nb, na);
        assert!(roa.is_current(Date::ymd(2022, 5, 1)));
        assert!(roa.is_current(nb));
        assert!(roa.is_current(na));
        assert!(!roa.is_current(Date::ymd(2020, 12, 31)));
        assert!(!roa.is_current(Date::ymd(2023, 1, 2)));
    }

    #[test]
    fn as0_roa_constructs() {
        let (nb, na) = window();
        let roa = Roa::exact(p("203.0.113.0/24"), Asn::ZERO, nb, na);
        assert!(roa.asn.is_zero());
    }
}
