//! Resource Public Key Infrastructure model and route origin validation.
//!
//! This crate implements the RPKI side of the paper's pipeline (§2.3, §6.1):
//!
//! * [`roa`] — Route Origin Authorization objects with the fields that
//!   matter for validation: prefix, origin ASN, maxLength, validity window.
//! * [`repository`] — the publication side: five RIR trust anchors, CA
//!   certificates with resource sets (RFC 6487-style containment), ROA
//!   issuance and revocation. The cryptography itself is simulated — the
//!   structures, resource-containment rules, expiry, and revocation
//!   semantics that relying-party software actually enforces are not.
//! * [`relying_party`] — the relying party (RP) pass: walk the trust
//!   anchors, reject expired/revoked/over-claiming objects, and emit the
//!   set of Validated ROA Payloads (VRPs).
//! * [`validation`] — RFC 6811 route origin validation of a
//!   (prefix, origin) pair against the VRP set: `Valid`, `InvalidAsn`,
//!   `InvalidLength`, or `NotFound`.
//! * [`compiled`] — the batch engine: [`CompiledVrpIndex`] freezes a VRP
//!   set into a struct-of-arrays covering index whose queries are
//!   allocation-free and whose batches amortize the trie descent and
//!   sweep the match predicates over contiguous candidate runs.
//! * [`archive`] — dated VRP snapshots, modelling the monthly validated
//!   ROA archives (2014–2022) the paper downloads from RIPE NCC.

pub mod archive;
pub mod compiled;
pub mod relying_party;
pub mod repository;
pub mod roa;
pub mod validation;
pub mod vrp;

pub use archive::{parse_vrps_csv, write_vrps_csv, VrpArchive};
pub use compiled::CompiledVrpIndex;
pub use relying_party::{acceptance_window, RejectReason, RelyingParty, ValidationReport};
pub use repository::{CaCertificate, CaId, RoaId, RpkiRepository, SignedRoa, TrustAnchor};
pub use roa::Roa;
pub use validation::{validate_origin, RpkiStatus};
pub use vrp::{Vrp, VrpSet};
