//! The relying-party (RP) pass: repository state in, VRPs out.
//!
//! Models what Routinator/rpki-client-style software does after fetching
//! the repositories (§2.3): walk each trust anchor, check every CA
//! certificate and ROA for currency, revocation, and resource containment,
//! and emit the surviving payloads as a [`VrpSet`].

use crate::repository::{RpkiRepository, SignedRoa};
use crate::vrp::{Vrp, VrpSet};
use manrs_net::Date;
use serde::{Deserialize, Serialize};

/// Why a signed ROA was rejected during the RP pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RejectReason {
    /// The signing CA certificate is unknown to any trust anchor.
    OrphanCa,
    /// The signing CA certificate is revoked.
    CaRevoked,
    /// The evaluation date is outside the CA certificate's window.
    CaExpired,
    /// The CA's issuer anchor no longer holds the CA's claimed prefix for
    /// this ROA, or the ROA claims space outside the CA's resources.
    OverClaim,
    /// The ROA object itself is revoked.
    RoaRevoked,
    /// The evaluation date is outside the ROA's own validity window.
    RoaExpired,
}

/// Statistics from one relying-party validation run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// Signed objects examined.
    pub examined: usize,
    /// Payloads accepted into the VRP set.
    pub accepted: usize,
    /// Rejections, as (reason, count) pairs in a fixed order.
    pub rejected: Vec<(RejectReason, usize)>,
}

impl ValidationReport {
    fn note(&mut self, reason: RejectReason) {
        if let Some(slot) = self.rejected.iter_mut().find(|(r, _)| *r == reason) {
            slot.1 += 1;
        } else {
            self.rejected.push((reason, 1));
        }
    }

    /// Total rejected objects.
    pub fn rejected_total(&self) -> usize {
        self.rejected.iter().map(|(_, n)| n).sum()
    }
}

/// A relying party evaluating the repository at a fixed date.
#[derive(Debug, Clone, Copy)]
pub struct RelyingParty {
    /// The date at which validity windows are evaluated.
    pub evaluation_date: Date,
}

impl RelyingParty {
    /// Creates a relying party for the given evaluation date.
    pub fn new(evaluation_date: Date) -> Self {
        RelyingParty { evaluation_date }
    }

    /// Runs the full validation pass, producing the VRP set and a report.
    pub fn validate(&self, repo: &RpkiRepository) -> (VrpSet, ValidationReport) {
        let mut vrps = VrpSet::new();
        let mut report = ValidationReport::default();
        for signed in repo.roas() {
            report.examined += 1;
            match self.evaluate(repo, signed) {
                Ok(vrp) => {
                    vrps.insert(vrp);
                    report.accepted += 1;
                }
                Err(reason) => report.note(reason),
            }
        }
        (vrps, report)
    }

    /// Evaluates one signed object's full chain at the evaluation date —
    /// the single per-object check [`RelyingParty::validate`] runs over
    /// the whole repository, exposed so incremental re-validation (the
    /// scenario crate's timeline engine) applies *exactly* the same
    /// rules to one object at a time.
    pub fn evaluate(
        &self,
        repo: &RpkiRepository,
        signed: &SignedRoa,
    ) -> Result<Vrp, RejectReason> {
        if signed.revoked {
            return Err(RejectReason::RoaRevoked);
        }
        let Some(ca) = repo.ca(signed.ca) else {
            return Err(RejectReason::OrphanCa);
        };
        if ca.revoked {
            return Err(RejectReason::CaRevoked);
        }
        if !(ca.not_before <= self.evaluation_date && self.evaluation_date <= ca.not_after) {
            return Err(RejectReason::CaExpired);
        }
        // Resource containment, re-checked bottom-up: the ROA must be
        // within the CA's resources, and the CA's claim on that space
        // must be within its anchor's administration.
        let anchored = repo
            .anchor(ca.issuer)
            .map(|anchor| anchor.holds(&signed.roa.prefix))
            .unwrap_or(false);
        if !ca.holds(&signed.roa.prefix) || !anchored {
            return Err(RejectReason::OverClaim);
        }
        if !signed.roa.is_current(self.evaluation_date) {
            return Err(RejectReason::RoaExpired);
        }
        Ok(Vrp::from(&signed.roa))
    }
}

/// The dates (inclusive) at which [`RelyingParty::evaluate`] would accept
/// `signed` given the repository's *current* revocation and containment
/// state, or `None` if no date can: `evaluate` at date `d` succeeds iff
/// `d` lies within the returned window.
///
/// Only the CA and ROA validity windows are date-dependent; revocation
/// and resource containment are not, so the window stays correct until
/// the repository itself changes (which incremental consumers observe as
/// explicit deltas and re-check).
pub fn acceptance_window(repo: &RpkiRepository, signed: &SignedRoa) -> Option<(Date, Date)> {
    if signed.revoked {
        return None;
    }
    let ca = repo.ca(signed.ca)?;
    if ca.revoked {
        return None;
    }
    let anchored = repo
        .anchor(ca.issuer)
        .map(|anchor| anchor.holds(&signed.roa.prefix))
        .unwrap_or(false);
    if !ca.holds(&signed.roa.prefix) || !anchored {
        return None;
    }
    let start = ca.not_before.max(signed.roa.not_before);
    let end = ca.not_after.min(signed.roa.not_after);
    (start <= end).then_some((start, end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repository::{RpkiRepository, TrustAnchor};
    use crate::roa::Roa;
    use manrs_net::{Asn, Prefix, Rir};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn d(s: &str) -> Date {
        s.parse().unwrap()
    }

    fn base_repo() -> (RpkiRepository, crate::repository::CaId) {
        let mut repo = RpkiRepository::new();
        repo.install_anchor(TrustAnchor { rir: Rir::RipeNcc, resources: vec![p("10.0.0.0/8")] });
        let ca = repo
            .issue_ca(Rir::RipeNcc, vec![p("10.1.0.0/16")], d("2020-01-01"), d("2024-01-01"))
            .unwrap();
        (repo, ca)
    }

    #[test]
    fn accepts_valid_chain() {
        let (mut repo, ca) = base_repo();
        let roa = Roa::exact(p("10.1.2.0/24"), Asn(1), d("2021-01-01"), d("2023-01-01"));
        repo.sign_roa(ca, roa).unwrap();
        let (vrps, report) = RelyingParty::new(d("2022-05-01")).validate(&repo);
        assert_eq!(vrps.len(), 1);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.rejected_total(), 0);
    }

    #[test]
    fn rejects_expired_roa() {
        let (mut repo, ca) = base_repo();
        let roa = Roa::exact(p("10.1.2.0/24"), Asn(1), d("2020-01-01"), d("2021-01-01"));
        repo.sign_roa(ca, roa).unwrap();
        let (vrps, report) = RelyingParty::new(d("2022-05-01")).validate(&repo);
        assert!(vrps.is_empty());
        assert_eq!(report.rejected, vec![(RejectReason::RoaExpired, 1)]);
    }

    #[test]
    fn rejects_expired_ca() {
        let (mut repo, ca) = base_repo();
        let roa = Roa::exact(p("10.1.2.0/24"), Asn(1), d("2020-01-01"), d("2030-01-01"));
        repo.sign_roa(ca, roa).unwrap();
        let (_, report) = RelyingParty::new(d("2025-01-01")).validate(&repo);
        assert_eq!(report.rejected, vec![(RejectReason::CaExpired, 1)]);
    }

    #[test]
    fn rejects_revoked_objects() {
        let (mut repo, ca) = base_repo();
        let roa = Roa::exact(p("10.1.2.0/24"), Asn(1), d("2021-01-01"), d("2023-01-01"));
        let id = repo.sign_roa(ca, roa).unwrap();
        repo.revoke_roa(id).unwrap();
        let (_, report) = RelyingParty::new(d("2022-05-01")).validate(&repo);
        assert_eq!(report.rejected, vec![(RejectReason::RoaRevoked, 1)]);

        let (mut repo, ca) = base_repo();
        repo.sign_roa(ca, roa).unwrap();
        repo.revoke_ca(ca).unwrap();
        let (_, report) = RelyingParty::new(d("2022-05-01")).validate(&repo);
        assert_eq!(report.rejected, vec![(RejectReason::CaRevoked, 1)]);
    }

    #[test]
    fn rejects_over_claiming_roa() {
        let (mut repo, ca) = base_repo();
        // Outside the CA's /16 — only reachable via the unchecked path.
        let roa = Roa::exact(p("10.2.0.0/24"), Asn(1), d("2021-01-01"), d("2023-01-01"));
        repo.sign_roa_unchecked(ca, roa);
        let (vrps, report) = RelyingParty::new(d("2022-05-01")).validate(&repo);
        assert!(vrps.is_empty());
        assert_eq!(report.rejected, vec![(RejectReason::OverClaim, 1)]);
    }

    #[test]
    fn acceptance_window_agrees_with_evaluate() {
        let (mut repo, ca) = base_repo();
        // ROA window [2021, 2025] against CA window [2020, 2024]: the
        // acceptance window is the intersection [2021, 2024].
        let roa = Roa::exact(p("10.1.2.0/24"), Asn(1), d("2021-01-01"), d("2025-01-01"));
        let id = repo.sign_roa(ca, roa).unwrap();
        let signed = repo.roa(id).unwrap();
        let (start, end) = acceptance_window(&repo, signed).unwrap();
        assert_eq!(start, d("2021-01-01"));
        assert_eq!(end, d("2024-01-01"));
        for probe in
            ["2020-12-31", "2021-01-01", "2022-06-15", "2024-01-01", "2024-01-02"]
        {
            let date = d(probe);
            let accepted = RelyingParty::new(date).evaluate(&repo, signed).is_ok();
            assert_eq!(accepted, start <= date && date <= end, "at {probe}");
        }
    }

    #[test]
    fn acceptance_window_none_for_dead_objects() {
        let (mut repo, ca) = base_repo();
        let roa = Roa::exact(p("10.1.2.0/24"), Asn(1), d("2021-01-01"), d("2023-01-01"));
        let id = repo.sign_roa(ca, roa).unwrap();
        repo.revoke_roa(id).unwrap();
        assert!(acceptance_window(&repo, repo.roa(id).unwrap()).is_none());

        let (mut repo, ca) = base_repo();
        // Outside the CA's resources: rejected at every date.
        let bad = Roa::exact(p("10.2.0.0/24"), Asn(1), d("2021-01-01"), d("2023-01-01"));
        let id = repo.sign_roa_unchecked(ca, bad);
        assert!(acceptance_window(&repo, repo.roa(id).unwrap()).is_none());

        let (mut repo, ca) = base_repo();
        // ROA window entirely after the CA expires: empty intersection.
        let late = Roa::exact(p("10.1.2.0/24"), Asn(1), d("2025-01-01"), d("2026-01-01"));
        let id = repo.sign_roa(ca, late).unwrap();
        assert!(acceptance_window(&repo, repo.roa(id).unwrap()).is_none());
    }

    #[test]
    fn mixed_repository_counts() {
        let (mut repo, ca) = base_repo();
        let good = Roa::exact(p("10.1.2.0/24"), Asn(1), d("2021-01-01"), d("2023-01-01"));
        let stale = Roa::exact(p("10.1.3.0/24"), Asn(1), d("2019-01-01"), d("2020-06-01"));
        repo.sign_roa(ca, good).unwrap();
        repo.sign_roa(ca, stale).unwrap();
        let (vrps, report) = RelyingParty::new(d("2022-05-01")).validate(&repo);
        assert_eq!(report.examined, 2);
        assert_eq!(report.accepted, 1);
        assert_eq!(vrps.len(), 1);
    }
}
