//! Dated VRP archives.
//!
//! The paper downloads monthly *validated ROA* snapshots from RIPE NCC
//! covering 2014–2022 (§5.4) and pairs each with a same-date routing
//! snapshot to track RPKI saturation over time (Fig. 6). [`VrpArchive`]
//! models that: a time-ordered sequence of VRP sets, queried by "latest
//! snapshot at or before date" exactly as the analysis pairs datasets.

use crate::vrp::{Vrp, VrpSet};
use manrs_net::Date;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A time series of VRP snapshots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VrpArchive {
    snapshots: BTreeMap<Date, Vec<Vrp>>,
}

impl VrpArchive {
    /// Creates an empty archive.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores a snapshot for `date`, replacing any existing one.
    pub fn insert(&mut self, date: Date, vrps: Vec<Vrp>) {
        self.snapshots.insert(date, vrps);
    }

    /// Number of snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// `true` if no snapshots are stored.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// The most recent snapshot at or before `date`, if any, with its
    /// actual date.
    pub fn at(&self, date: Date) -> Option<(Date, &[Vrp])> {
        self.snapshots
            .range(..=date)
            .next_back()
            .map(|(d, v)| (*d, v.as_slice()))
    }

    /// Builds the indexed [`VrpSet`] for the snapshot at or before `date`.
    /// Returns an empty set when the archive has no snapshot that early —
    /// the same as validating before the RPKI existed.
    pub fn set_at(&self, date: Date) -> VrpSet {
        match self.at(date) {
            Some((_, vrps)) => vrps.iter().copied().collect(),
            None => VrpSet::new(),
        }
    }

    /// All snapshot dates in order.
    pub fn dates(&self) -> impl Iterator<Item = Date> + '_ {
        self.snapshots.keys().copied()
    }
}

/// Serializes VRPs in the RIPE NCC validated-ROA CSV shape:
/// `ASN,IP Prefix,Max Length` with a header line.
pub fn write_vrps_csv(vrps: &[Vrp]) -> String {
    let mut out = String::from("ASN,IP Prefix,Max Length\n");
    for vrp in vrps {
        out.push_str(&format!("{},{},{}\n", vrp.asn, vrp.prefix, vrp.max_length));
    }
    out
}

/// Parses the CSV produced by [`write_vrps_csv`] (and tolerates the real
/// archives' quoting-free rows). The header line is skipped when
/// present.
pub fn parse_vrps_csv(text: &str) -> Result<Vec<Vrp>, manrs_net::NetError> {
    let mut vrps = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if idx == 0 && line.to_ascii_lowercase().starts_with("asn,") {
            continue;
        }
        let mut parts = line.split(',');
        let bad = || manrs_net::NetError::InvalidAddress(line.to_owned());
        let asn: manrs_net::Asn = parts.next().ok_or_else(bad)?.trim().parse()?;
        let prefix: manrs_net::Prefix = parts.next().ok_or_else(bad)?.trim().parse()?;
        let max_length: u8 = parts
            .next()
            .ok_or_else(bad)?
            .trim()
            .parse()
            .map_err(|_| bad())?;
        if max_length < prefix.len() || max_length > prefix.family().width() {
            return Err(manrs_net::NetError::MaxLengthTooShort {
                prefix_len: prefix.len(),
                max_len: max_length,
            });
        }
        vrps.push(Vrp::new(prefix, asn, max_length));
    }
    Ok(vrps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_net::{Asn, Prefix};

    fn vrp(s: &str, asn: u32) -> Vrp {
        let p: Prefix = s.parse().unwrap();
        Vrp::new(p, Asn(asn), p.len())
    }

    #[test]
    fn empty_archive() {
        let a = VrpArchive::new();
        assert!(a.is_empty());
        assert!(a.at(Date::ymd(2022, 5, 1)).is_none());
        assert!(a.set_at(Date::ymd(2022, 5, 1)).is_empty());
    }

    #[test]
    fn latest_at_or_before() {
        let mut a = VrpArchive::new();
        a.insert(Date::ymd(2021, 1, 1), vec![vrp("10.0.0.0/8", 1)]);
        a.insert(Date::ymd(2022, 1, 1), vec![vrp("10.0.0.0/8", 1), vrp("11.0.0.0/8", 2)]);
        // Before the first snapshot: nothing.
        assert!(a.at(Date::ymd(2020, 6, 1)).is_none());
        // Between snapshots: the earlier one.
        let (d, v) = a.at(Date::ymd(2021, 7, 1)).unwrap();
        assert_eq!(d, Date::ymd(2021, 1, 1));
        assert_eq!(v.len(), 1);
        // Exactly on a snapshot date.
        let (d, v) = a.at(Date::ymd(2022, 1, 1)).unwrap();
        assert_eq!(d, Date::ymd(2022, 1, 1));
        assert_eq!(v.len(), 2);
        // After the last one.
        assert_eq!(a.set_at(Date::ymd(2022, 5, 1)).len(), 2);
    }

    #[test]
    fn replacing_a_snapshot() {
        let mut a = VrpArchive::new();
        a.insert(Date::ymd(2022, 1, 1), vec![vrp("10.0.0.0/8", 1)]);
        a.insert(Date::ymd(2022, 1, 1), vec![]);
        assert_eq!(a.len(), 1);
        assert!(a.set_at(Date::ymd(2022, 5, 1)).is_empty());
    }

    #[test]
    fn csv_round_trip() {
        let vrps = vec![
            Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(64_500), 20),
            Vrp::new("2001:db8::/32".parse().unwrap(), Asn(64_501), 48),
            Vrp::new("203.0.113.0/24".parse().unwrap(), Asn::ZERO, 24),
        ];
        let csv = write_vrps_csv(&vrps);
        assert!(csv.starts_with("ASN,IP Prefix,Max Length\n"));
        let parsed = parse_vrps_csv(&csv).unwrap();
        assert_eq!(parsed, vrps);
    }

    #[test]
    fn csv_without_header_and_with_blanks() {
        let parsed = parse_vrps_csv("AS1,10.0.0.0/16,16\n\nAS2,10.1.0.0/16,20\n").unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1].max_length, 20);
    }

    #[test]
    fn csv_rejects_garbage() {
        assert!(parse_vrps_csv("AS1,banana,16\n").is_err());
        assert!(parse_vrps_csv("AS1,10.0.0.0/16\n").is_err());
        assert!(parse_vrps_csv("AS1,10.0.0.0/16,8\n").is_err()); // maxlen < len
        assert!(parse_vrps_csv("AS1,10.0.0.0/16,40\n").is_err()); // maxlen > 32
        assert!(parse_vrps_csv("ASX,10.0.0.0/16,16\n").is_err());
    }

    #[test]
    fn dates_in_order() {
        let mut a = VrpArchive::new();
        a.insert(Date::ymd(2022, 1, 1), vec![]);
        a.insert(Date::ymd(2021, 1, 1), vec![]);
        let dates: Vec<Date> = a.dates().collect();
        assert_eq!(dates, vec![Date::ymd(2021, 1, 1), Date::ymd(2022, 1, 1)]);
    }
}
