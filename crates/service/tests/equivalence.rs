//! Sharding must never change an answer: every query against a sharded
//! service is bit-for-bit identical to the single-threaded, unsharded
//! compiled-index path, for every shard count.

use manrs_irr::CompiledIrrIndex;
use manrs_net::{Asn, Date, Prefix};
use manrs_rpki::{CompiledVrpIndex, Vrp, VrpSet};
use manrs_scenario::{weekly_steps, ScenarioConfig, ScenarioWorld, TimelineEngine};
use manrs_bgp::{PolicyExtension, PolicySet};
use manrs_service::{PolicyMixDescriptor, Query, QueryResponse, ShardRouter, SnapshotService};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn p(s: &str) -> Prefix {
    s.parse().unwrap()
}

/// Weekly steps start 2022-02-01, before the world's snapshot date —
/// anything replaying them must start there too.
fn replay_start() -> Date {
    Date::ymd(2022, 2, 1)
}

/// Random v4/v6 prefixes biased toward shared first octets so covering
/// relations (and shard-span replication) actually occur.
fn arb_prefix() -> impl Strategy<Value = Prefix> {
    (0usize..7, 0u32..1 << 16, 0u8..19).prop_map(|(family, low, len)| {
        if family < 5 {
            let octet = [9u32, 10, 11, 192, 203][family];
            let base = (octet << 24) | (low << 8);
            Prefix::V4(manrs_net::Ipv4Prefix::new_truncated(base.into(), 6 + len).unwrap())
        } else {
            let base = ([0x20u128, 0x2a][family - 5] << 120) | ((low as u128) << 64);
            Prefix::V6(manrs_net::Ipv6Prefix::new_truncated(base.into(), 20 + len).unwrap())
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Per-shard `build_where` slices answer covering queries exactly
    /// like the full indexes, across every shard count.
    #[test]
    fn sharded_indexes_match_global(
        vrps in prop::collection::vec((arb_prefix(), 1u32..64, 0u8..8), 1..40),
        queries in prop::collection::vec((arb_prefix(), 1u32..64), 1..60),
    ) {
        let mut set = VrpSet::new();
        for &(prefix, asn, extra) in &vrps {
            let family_max = if matches!(prefix, Prefix::V4(_)) { 32 } else { 128 };
            let max_len = (prefix.len() + extra).min(family_max);
            set.insert(Vrp::new(prefix, Asn(asn), max_len));
        }
        let global = CompiledVrpIndex::build(&set);
        for n in SHARD_COUNTS {
            let router = ShardRouter::new(n);
            let shards: Vec<CompiledVrpIndex> = (0..n)
                .map(|s| CompiledVrpIndex::build_where(&set, |p| router.spans_shard(p, s)))
                .collect();
            for &(prefix, asn) in &queries {
                let expected = global.validate(&prefix, Asn(asn));
                let sharded = shards[router.shard_of(&prefix)].validate(&prefix, Asn(asn));
                prop_assert_eq!(expected, sharded, "prefix {} shards {}", prefix, n);
            }
        }
    }
}

/// Full-service equivalence: services at every shard count answer the
/// same queries identically, before and after a replayed timeline, and
/// match the unsharded compiled indexes over the engine's registries.
#[test]
fn service_answers_match_across_shard_counts() {
    let world = ScenarioWorld::builder(ScenarioConfig::small(23)).build();
    let services: Vec<SnapshotService> = SHARD_COUNTS
        .iter()
        .map(|&n| SnapshotService::builder(&world).shards(n).start_date(replay_start()).build())
        .collect();
    let mut clients: Vec<_> = services.iter().map(|s| s.client()).collect();

    // Query the whole visible table plus probes that hit no shard's
    // own pairs (NotFound routing still must agree).
    let mut queries = services[0].handle().collect_pairs();
    queries.push((p("198.51.100.0/24"), Asn(64_496)));
    queries.push((p("2001:db8:ffff::/48"), Asn(64_497)));

    let steps = weekly_steps(&world, 10, 0.05, world.config.seed);
    let mut dates = vec![None];
    dates.extend(steps.iter().map(|s| Some(s.date)));
    for (i, date) in dates.iter().enumerate() {
        if date.is_some() {
            let step = &steps[i - 1];
            for service in &services {
                service.apply_step(step);
            }
        }
        let baseline = match clients[0].query(&Query::ValidatePairs { pairs: queries.clone() }) {
            QueryResponse::Statuses { statuses, .. } => statuses,
            other => panic!("unexpected response {other:?}"),
        };
        for client in &mut clients[1..] {
            match client.query(&Query::ValidatePairs { pairs: queries.clone() }) {
                QueryResponse::Statuses { statuses, .. } => assert_eq!(statuses, baseline),
                other => panic!("unexpected response {other:?}"),
            }
        }
        // Conformance and revalidation agree everywhere too.
        let conf = clients[0].query(&Query::Conformance);
        for (client, service) in clients.iter_mut().zip(&services).skip(1) {
            match (client.query(&Query::Conformance), &conf) {
                (
                    QueryResponse::Conformance { summary, .. },
                    QueryResponse::Conformance { summary: expected, .. },
                ) => assert_eq!(&summary, expected),
                other => panic!("unexpected responses {other:?}"),
            }
            match client.query(&Query::RevalidateAll) {
                QueryResponse::Revalidation { pairs, drifted, .. } => {
                    assert_eq!(pairs, service.pair_count());
                    assert_eq!(drifted, 0, "shard indexes drifted from statuses");
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
    }
    for service in &services {
        assert!(service.verify(), "service failed self-verification");
    }
}

/// The unsharded oracle: after the same replay, a sharded service
/// answers exactly like global compiled indexes built from scratch
/// over a plain (non-sharded, single-threaded) engine's registries.
#[test]
fn sharded_service_matches_unsharded_oracle() {
    let world = ScenarioWorld::builder(ScenarioConfig::small(31)).build();
    let steps = weekly_steps(&world, 6, 0.08, world.config.seed);

    let mut oracle_engine = TimelineEngine::new(&world, replay_start());
    for step in &steps {
        oracle_engine.step(step.date, step.deltas.iter().cloned());
    }
    let oracle_vrp = CompiledVrpIndex::build(oracle_engine.vrps());
    let oracle_irr = CompiledIrrIndex::build(oracle_engine.irr());

    for n in SHARD_COUNTS {
        let service = SnapshotService::builder(&world).shards(n).start_date(replay_start()).build();
        let mut client = service.client();
        for step in &steps {
            service.apply_step(step);
        }
        let mut queries = service.handle().collect_pairs();
        queries.push((p("198.51.100.0/24"), Asn(64_496)));
        let expected: Vec<_> = queries
            .iter()
            .map(|&(prefix, origin)| {
                (oracle_vrp.validate(&prefix, origin), oracle_irr.validate(&prefix, origin))
            })
            .collect();
        match client.query(&Query::ValidatePairs { pairs: queries }) {
            QueryResponse::Statuses { statuses, .. } => assert_eq!(statuses, expected),
            other => panic!("unexpected response {other:?}"),
        }
        assert_eq!(service.handle().collect_statuses(), oracle_engine.statuses());
        assert!(service.verify());
    }
}

/// `ConformanceUnder` answers are shard-count invariant, cross-check
/// against the conformance histogram, and flag path-aware mixes as
/// path-limited.
#[test]
fn mix_conformance_matches_histogram_across_shards() {
    let world = ScenarioWorld::builder(ScenarioConfig::small(29)).build();
    let services: Vec<SnapshotService> = SHARD_COUNTS
        .iter()
        .map(|&n| SnapshotService::builder(&world).shards(n).start_date(replay_start()).build())
        .collect();
    let mut clients: Vec<_> = services.iter().map(|s| s.client()).collect();

    let mixes = [
        PolicyMixDescriptor { name: "open".into(), set: PolicySet::OPEN },
        PolicyMixDescriptor { name: "rov".into(), set: PolicySet::OPEN.with(PolicyExtension::Rov) },
        PolicyMixDescriptor { name: "manrs_isp".into(), set: PolicySet::MANRS_ISP },
        PolicyMixDescriptor::of(PolicySet::MANRS_ISP.with(PolicyExtension::Aspa)),
    ];
    for mix in &mixes {
        let baseline = clients[0].query(&Query::ConformanceUnder { mix: mix.clone() });
        for client in &mut clients[1..] {
            assert_eq!(client.query(&Query::ConformanceUnder { mix: mix.clone() }), baseline);
        }
        let QueryResponse::MixConformance { mix: echoed, summary, imports, .. } = baseline else {
            panic!("unexpected response");
        };
        assert_eq!(&echoed, mix);
        assert_eq!(imports.pairs as u64, summary.total());
        assert_eq!(imports.path_limited, mix.set.reads_path());
        match mix.name.as_str() {
            "open" => {
                assert_eq!(imports.dropped_from_customer, 0);
                assert_eq!(imports.dropped_from_peer, 0);
                assert_eq!(imports.dropped_from_provider, 0);
            }
            "rov" => {
                // ROV is relationship-blind: every Invalid pair drops
                // everywhere, exactly the histogram's Invalid rows.
                let invalid = (summary.rpki_total(manrs_rpki::RpkiStatus::InvalidAsn)
                    + summary.rpki_total(manrs_rpki::RpkiStatus::InvalidLength))
                    as usize;
                assert_eq!(imports.dropped_from_customer, invalid);
                assert_eq!(imports.dropped_from_peer, invalid);
                assert_eq!(imports.dropped_from_provider, invalid);
                assert!(invalid > 0, "world must contain RPKI-Invalid pairs");
            }
            _ => {
                // IRR customer filtering only adds customer-side drops;
                // the ASPA modifier adds nothing path-blind.
                assert!(imports.dropped_from_customer >= imports.dropped_from_peer);
                assert_eq!(imports.dropped_from_peer, imports.dropped_from_provider);
            }
        }
    }
}
