//! Snapshot-rotation consistency under concurrency.
//!
//! Readers holding an old [`manrs_service::SnapshotHandle`] must see a
//! frozen epoch that is bit-for-bit equal to the same epoch built
//! sequentially — across 1/2/4/8 reader threads racing one writer.
//! The sequential reference is a second, single-threaded replay of the
//! identical step stream, flushed after every step so each epoch
//! number maps to exactly one canonical state.

use manrs_irr::IrrStatus;
use manrs_net::Date;
use manrs_rpki::RpkiStatus;
use manrs_scenario::{weekly_steps, ScenarioConfig, ScenarioWorld};
use manrs_service::{Query, QueryResponse, RotationPolicy, SnapshotService};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};

type Statuses = Vec<(RpkiStatus, IrrStatus)>;

/// Weekly steps start 2022-02-01, before the world's snapshot date —
/// anything replaying them must start there too.
fn replay_start() -> Date {
    Date::ymd(2022, 2, 1)
}

/// Sequential replay: the canonical statuses of every epoch.
fn reference_epochs(world: &ScenarioWorld, weeks: usize) -> BTreeMap<u64, Statuses> {
    let service = SnapshotService::builder(world)
        .shards(4)
        .rotation(RotationPolicy::EveryStep)
        .start_date(replay_start())
        .build();
    let mut epochs = BTreeMap::new();
    let snap = service.handle();
    epochs.insert(snap.epoch(), snap.collect_statuses());
    for step in weekly_steps(world, weeks, 0.05, world.config.seed) {
        service.apply_step(&step);
        let snap = service.handle();
        epochs.insert(snap.epoch(), snap.collect_statuses());
    }
    assert!(service.verify());
    epochs
}

#[test]
fn concurrent_readers_see_sequentially_identical_epochs() {
    let world = ScenarioWorld::builder(ScenarioConfig::small(17)).build();
    const WEEKS: usize = 12;
    let reference = reference_epochs(&world, WEEKS);

    for readers in [1usize, 2, 4, 8] {
        let service = SnapshotService::builder(&world)
            .shards(4)
            .rotation(RotationPolicy::EveryStep)
            .start_date(replay_start())
            .build();
        let steps = weekly_steps(&world, WEEKS, 0.05, world.config.seed);
        let done = AtomicBool::new(false);
        let service_ref = &service;
        let done_ref = &done;

        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for _ in 0..readers {
                handles.push(scope.spawn(move || {
                    let mut client = service_ref.client();
                    let mut sampled: Vec<(u64, Statuses)> = Vec::new();
                    let mut held = service_ref.handle();
                    while !done_ref.load(Ordering::Relaxed) {
                        // Sample the *current* epoch...
                        let snap = client.handle();
                        sampled.push((snap.epoch(), snap.collect_statuses()));
                        // ...and re-read the *held* old epoch: it must
                        // stay frozen no matter what the writer does.
                        sampled.push((held.epoch(), held.collect_statuses()));
                        if sampled.len().is_multiple_of(7) {
                            held = client.handle();
                        }
                        // The query path answers from a consistent
                        // epoch too (no torn reads mid-rotation).
                        match client.query(&Query::RevalidateAll) {
                            QueryResponse::Revalidation { epoch, drifted, .. } => {
                                assert_eq!(drifted, 0, "epoch {epoch} drifted mid-read");
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                    sampled
                }));
            }
            for step in &steps {
                service_ref.apply_step(step);
            }
            done_ref.store(true, Ordering::Relaxed);
            for handle in handles {
                for (epoch, statuses) in handle.join().expect("reader thread panicked") {
                    let expected = reference
                        .get(&epoch)
                        .unwrap_or_else(|| panic!("reader saw unknown epoch {epoch}"));
                    assert_eq!(
                        &statuses, expected,
                        "epoch {epoch} read concurrently differs from sequential build \
                         ({readers} readers)"
                    );
                }
            }
        });
        assert!(service.verify(), "post-race self-check ({readers} readers)");
        let stats = service.stats();
        assert_eq!(stats.epochs_published, steps.len() as u64);
    }
}
