//! The service's single typed front door.
//!
//! Every read the service answers is a [`Query`]; every answer is a
//! [`QueryResponse`] stamped with the epoch it was computed against.
//! [`ServiceClient`] owns the per-reader state — a pin slot in the
//! epoch registry plus reusable routing and batch buffers — so the
//! steady-state [`Query::ValidatePairs`] path performs **zero**
//! allocations once its buffers are warm.

use crate::epoch::{EpochRegistry, SnapshotHandle};
use manrs_bgp::{Announcement, PolicySet};
use manrs_ihr::VantageRanking;
use manrs_irr::IrrStatus;
use manrs_net::{Asn, BatchScratch, Prefix};
use manrs_rpki::RpkiStatus;
use manrs_topology::Relationship;
use std::sync::Arc;

/// A read request against the current (or a held) epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum Query {
    /// Validate arbitrary (prefix, origin) pairs against the epoch's
    /// registries — the RFC 6811 + IRR hot path.
    ValidatePairs {
        /// The routes to validate.
        pairs: Vec<(Prefix, Asn)>,
    },
    /// Look up the transit-hegemony aggregate of one AS.
    Hegemony {
        /// The transit AS.
        asn: Asn,
    },
    /// The conformance histogram over every visible pair.
    Conformance,
    /// The conformance histogram plus the per-relationship import
    /// outcome of every visible pair under a named policy-extension
    /// mix — "what would a deployer of this mix drop?".
    ConformanceUnder {
        /// The mix to evaluate.
        mix: PolicyMixDescriptor,
    },
    /// Re-validate the entire visible table against the epoch's own
    /// indexes and report how many stored statuses drift — an
    /// end-to-end self-check that must report zero.
    RevalidateAll,
    /// The marginal-coverage value of every vantage point: the greedy
    /// [`VantageRanking`] the service computed at build time, for
    /// clients deciding which vantage feeds are worth collecting.
    VantageValue,
}

/// A typed answer, stamped with the answering epoch.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryResponse {
    /// Answer to [`Query::ValidatePairs`]; `statuses[i]` corresponds
    /// to `pairs[i]`.
    Statuses {
        /// The answering epoch.
        epoch: u64,
        /// Per-pair (rpki, irr) statuses.
        statuses: Vec<(RpkiStatus, IrrStatus)>,
    },
    /// Answer to [`Query::Hegemony`].
    Hegemony {
        /// The answering epoch.
        epoch: u64,
        /// The queried AS.
        asn: Asn,
        /// Its aggregate, or `None` if it transits nothing.
        summary: Option<HegemonySummary>,
    },
    /// Answer to [`Query::Conformance`].
    Conformance {
        /// The answering epoch.
        epoch: u64,
        /// The histogram.
        summary: ConformanceSummary,
    },
    /// Answer to [`Query::ConformanceUnder`].
    MixConformance {
        /// The answering epoch.
        epoch: u64,
        /// The evaluated mix, echoed back.
        mix: PolicyMixDescriptor,
        /// The epoch's conformance histogram (mix-independent).
        summary: ConformanceSummary,
        /// What the mix would import.
        imports: MixImportSummary,
    },
    /// Answer to [`Query::RevalidateAll`].
    Revalidation {
        /// The answering epoch.
        epoch: u64,
        /// Pairs re-validated.
        pairs: usize,
        /// Stored statuses disagreeing with re-validation (must be 0).
        drifted: usize,
    },
    /// Answer to [`Query::VantageValue`].
    VantageValue {
        /// The answering epoch.
        epoch: u64,
        /// The greedy marginal-coverage ranking (epoch-invariant:
        /// vantage paths are fixed for the service's lifetime).
        ranking: VantageRanking,
    },
}

/// A named policy-extension mix to evaluate service questions under.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyMixDescriptor {
    /// Display name, echoed in the response.
    pub name: String,
    /// The extension set the hypothetical deployer runs.
    pub set: PolicySet,
}

impl PolicyMixDescriptor {
    /// A descriptor named after the set's own debug rendering.
    pub fn of(set: PolicySet) -> Self {
        PolicyMixDescriptor { name: format!("{set:?}"), set }
    }
}

/// The import outcome of every visible pair under one policy mix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MixImportSummary {
    /// Visible pairs evaluated.
    pub pairs: usize,
    /// Pairs the mix would drop when learned from a customer.
    pub dropped_from_customer: usize,
    /// Pairs the mix would drop when learned from a lateral peer.
    pub dropped_from_peer: usize,
    /// Pairs the mix would drop when learned from a provider.
    pub dropped_from_provider: usize,
    /// True when the mix contains path-aware extensions (ASPA, OTC,
    /// path-end). The service stores registry statuses, not AS paths,
    /// so the drop counts reflect only the path-blind conjunction —
    /// exact for valley-free-propagated routes, silent on leaks.
    pub path_limited: bool,
}

/// Per-transit-AS hegemony aggregate over the IHR transit dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HegemonySummary {
    /// Transit rows the AS appears in.
    pub transit_rows: usize,
    /// Mean hegemony across those rows.
    pub mean: f64,
    /// Maximum hegemony across those rows.
    pub max: f64,
}

fn rpki_bin(status: RpkiStatus) -> usize {
    match status {
        RpkiStatus::Valid => 0,
        RpkiStatus::InvalidLength => 1,
        RpkiStatus::InvalidAsn => 2,
        RpkiStatus::NotFound => 3,
    }
}

fn irr_bin(status: IrrStatus) -> usize {
    match status {
        IrrStatus::Valid => 0,
        IrrStatus::InvalidLength => 1,
        IrrStatus::InvalidAsn => 2,
        IrrStatus::NotFound => 3,
    }
}

/// A fixed 4×4 histogram of visible pairs over (rpki, irr) status —
/// the paper's conformance breakdown, maintained incrementally by the
/// epoch writer (unrecord old status, record new) so publishing an
/// epoch never rescans the pair table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConformanceSummary {
    counts: [[u64; 4]; 4],
}

impl ConformanceSummary {
    /// Adds one pair at (rpki, irr).
    pub fn record(&mut self, rpki: RpkiStatus, irr: IrrStatus) {
        self.counts[rpki_bin(rpki)][irr_bin(irr)] += 1;
    }

    /// Removes one pair previously recorded at (rpki, irr).
    pub fn unrecord(&mut self, rpki: RpkiStatus, irr: IrrStatus) {
        let cell = &mut self.counts[rpki_bin(rpki)][irr_bin(irr)];
        debug_assert!(*cell > 0, "unrecord of an empty conformance cell");
        *cell = cell.saturating_sub(1);
    }

    /// Pairs at exactly (rpki, irr).
    pub fn count(&self, rpki: RpkiStatus, irr: IrrStatus) -> u64 {
        self.counts[rpki_bin(rpki)][irr_bin(irr)]
    }

    /// Pairs with the given RPKI status, any IRR status.
    pub fn rpki_total(&self, rpki: RpkiStatus) -> u64 {
        self.counts[rpki_bin(rpki)].iter().sum()
    }

    /// Pairs with the given IRR status, any RPKI status.
    pub fn irr_total(&self, irr: IrrStatus) -> u64 {
        self.counts.iter().map(|row| row[irr_bin(irr)]).sum()
    }

    /// Total recorded pairs.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }
}

/// A reader of the service: one pin slot, one set of warm buffers.
///
/// Clients are cheap but not free (each builds its routing buffers);
/// create one per reader thread and reuse it. Every query acquires the
/// *current* epoch; use [`ServiceClient::handle`] to hold one epoch
/// across several queries.
pub struct ServiceClient {
    registry: Arc<EpochRegistry>,
    slot: Option<usize>,
    scratch: BatchScratch,
    /// Per-shard query-index buckets (`buckets[s]` = positions of the
    /// batch's pairs routed to shard `s`).
    buckets: Vec<Vec<u32>>,
    shard_pairs: Vec<(Prefix, Asn)>,
    rpki_buf: Vec<RpkiStatus>,
    irr_buf: Vec<IrrStatus>,
}

impl ServiceClient {
    pub(crate) fn new(registry: Arc<EpochRegistry>, shards: usize) -> Self {
        let slot = registry.claim_slot();
        ServiceClient {
            registry,
            slot,
            scratch: BatchScratch::new(),
            buckets: (0..shards).map(|_| Vec::new()).collect(),
            shard_pairs: Vec::new(),
            rpki_buf: Vec::new(),
            irr_buf: Vec::new(),
        }
    }

    /// Acquires the current epoch. Lock-free when this client got a
    /// pin slot; never blocks on the writer either way.
    pub fn handle(&self) -> SnapshotHandle {
        self.registry.acquire(self.slot)
    }

    /// Answers one query against the current epoch.
    pub fn query(&mut self, query: &Query) -> QueryResponse {
        match query {
            Query::ValidatePairs { pairs } => {
                let mut statuses = Vec::new();
                let epoch = self.validate_pairs_into(pairs, &mut statuses);
                QueryResponse::Statuses { epoch, statuses }
            }
            Query::Hegemony { asn } => {
                let snap = self.handle();
                QueryResponse::Hegemony {
                    epoch: snap.epoch(),
                    asn: *asn,
                    summary: snap.hegemony(*asn),
                }
            }
            Query::Conformance => {
                let snap = self.handle();
                QueryResponse::Conformance { epoch: snap.epoch(), summary: snap.conformance() }
            }
            Query::ConformanceUnder { mix } => {
                let snap = self.handle();
                let mut imports = MixImportSummary {
                    path_limited: mix.set.reads_path(),
                    ..MixImportSummary::default()
                };
                for shard in snap.shards() {
                    for (&(prefix, origin), &(rpki, irr)) in
                        shard.pairs.iter().zip(&shard.status)
                    {
                        let ann = Announcement::new(prefix, origin, rpki, irr);
                        imports.pairs += 1;
                        imports.dropped_from_customer +=
                            usize::from(!mix.set.accepts(&ann, Relationship::Customer));
                        imports.dropped_from_peer +=
                            usize::from(!mix.set.accepts(&ann, Relationship::Peer));
                        imports.dropped_from_provider +=
                            usize::from(!mix.set.accepts(&ann, Relationship::Provider));
                    }
                }
                QueryResponse::MixConformance {
                    epoch: snap.epoch(),
                    mix: mix.clone(),
                    summary: snap.conformance(),
                    imports,
                }
            }
            Query::RevalidateAll => {
                let snap = self.handle();
                let (mut pairs, mut drifted) = (0, 0);
                for shard in snap.shards() {
                    shard.vrp.validate_batch_into(
                        &shard.pairs,
                        &mut self.scratch,
                        &mut self.rpki_buf,
                    );
                    shard.irr.validate_batch_into(
                        &shard.pairs,
                        &mut self.scratch,
                        &mut self.irr_buf,
                    );
                    pairs += shard.pairs.len();
                    for (local, &stored) in shard.status.iter().enumerate() {
                        if (self.rpki_buf[local], self.irr_buf[local]) != stored {
                            drifted += 1;
                        }
                    }
                }
                QueryResponse::Revalidation { epoch: snap.epoch(), pairs, drifted }
            }
            Query::VantageValue => {
                let snap = self.handle();
                QueryResponse::VantageValue {
                    epoch: snap.epoch(),
                    ranking: snap.vantage_value().clone(),
                }
            }
        }
    }

    /// The zero-allocation validation path: routes `pairs` to their
    /// shards, answers each shard's slice through its compiled indexes
    /// with this client's warm buffers, and scatters the statuses back
    /// into `out` (`out[i]` answers `pairs[i]`). Returns the answering
    /// epoch. With warm buffers this allocates nothing.
    pub fn validate_pairs_into(
        &mut self,
        pairs: &[(Prefix, Asn)],
        out: &mut Vec<(RpkiStatus, IrrStatus)>,
    ) -> u64 {
        let snap = self.registry.acquire(self.slot);
        out.clear();
        out.resize(pairs.len(), (RpkiStatus::NotFound, IrrStatus::NotFound));
        let router = snap.router();
        for bucket in &mut self.buckets {
            bucket.clear();
        }
        for (i, (prefix, _)) in pairs.iter().enumerate() {
            self.buckets[router.shard_of(prefix)].push(i as u32);
        }
        for (shard, bucket) in snap.shards().iter().zip(&self.buckets) {
            if bucket.is_empty() {
                continue;
            }
            self.shard_pairs.clear();
            self.shard_pairs.extend(bucket.iter().map(|&i| pairs[i as usize]));
            shard.vrp.validate_batch_into(&self.shard_pairs, &mut self.scratch, &mut self.rpki_buf);
            shard.irr.validate_batch_into(&self.shard_pairs, &mut self.scratch, &mut self.irr_buf);
            for (j, &i) in bucket.iter().enumerate() {
                out[i as usize] = (self.rpki_buf[j], self.irr_buf[j]);
            }
        }
        snap.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conformance_histogram_round_trips() {
        let mut summary = ConformanceSummary::default();
        summary.record(RpkiStatus::Valid, IrrStatus::NotFound);
        summary.record(RpkiStatus::Valid, IrrStatus::Valid);
        summary.record(RpkiStatus::InvalidAsn, IrrStatus::Valid);
        assert_eq!(summary.total(), 3);
        assert_eq!(summary.rpki_total(RpkiStatus::Valid), 2);
        assert_eq!(summary.irr_total(IrrStatus::Valid), 2);
        assert_eq!(summary.count(RpkiStatus::Valid, IrrStatus::NotFound), 1);
        summary.unrecord(RpkiStatus::Valid, IrrStatus::NotFound);
        summary.record(RpkiStatus::Valid, IrrStatus::Valid);
        assert_eq!(summary.count(RpkiStatus::Valid, IrrStatus::NotFound), 0);
        assert_eq!(summary.count(RpkiStatus::Valid, IrrStatus::Valid), 2);
        assert_eq!(summary.total(), 3);
    }
}
