//! Sharded snapshot query service over the MANRS validation pipeline.
//!
//! The ROADMAP's north star is a production-scale serving system:
//! point validations, hegemony lookups, and full-table revalidations
//! answered continuously while the registries keep changing. This
//! crate is that serving layer over the rest of the workspace:
//!
//! * [`shard`] — query/candidate routing: the 512 family+first-octet
//!   buckets of [`manrs_net::shard_bucket`] folded onto `N` shards,
//!   with covering candidates replicated so every query is answered
//!   entirely from its own shard.
//! * [`epoch`] — immutable [`EpochSnapshot`]s (per-shard compiled
//!   indexes + pair statuses + aggregates) behind an epoch-pinned,
//!   lock-free registry: readers acquire [`SnapshotHandle`]s without
//!   blocking while the writer rotates new epochs in, and old epochs
//!   are reclaimed into the writer's buffer pool once their last
//!   handle drops.
//! * [`query`] — the single typed front door: [`Query`] in,
//!   [`QueryResponse`] out, with a zero-allocation steady-state
//!   validation path ([`ServiceClient::validate_pairs_into`]).
//! * [`service`] — [`ServiceBuilder`] / [`SnapshotService`]: a
//!   [`manrs_scenario::TimelineEngine`] with its delta feed enabled
//!   drives epoch builds, splicing deltas into recycled epoch buffers
//!   under the engine's own patch-or-rebuild cost model.
//!
//! ```
//! use manrs_scenario::{ScenarioConfig, ScenarioWorld};
//! use manrs_service::{Query, QueryResponse, SnapshotService};
//!
//! let world = ScenarioWorld::builder(ScenarioConfig::small(7)).build();
//! let service = SnapshotService::builder(&world).shards(4).build();
//! let mut client = service.client();
//! let pairs = service.handle().collect_pairs();
//! match client.query(&Query::ValidatePairs { pairs }) {
//!     QueryResponse::Statuses { epoch, statuses } => {
//!         assert_eq!(epoch, 0);
//!         assert_eq!(statuses.len(), service.pair_count());
//!     }
//!     _ => unreachable!(),
//! }
//! ```

pub mod epoch;
pub mod query;
pub mod service;
pub mod shard;

pub use epoch::{EpochSnapshot, ShardState, SnapshotHandle};
pub use query::{
    ConformanceSummary, HegemonySummary, MixImportSummary, PolicyMixDescriptor, Query,
    QueryResponse, ServiceClient,
};
pub use service::{RotationPolicy, ServiceBuilder, ServiceStats, SnapshotService};
pub use shard::{ShardRouter, ShardSpan, MAX_SHARDS};
