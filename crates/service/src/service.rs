//! The service itself: builder, writer, and epoch publication.
//!
//! [`ServiceBuilder`] compiles a [`manrs_scenario::ScenarioWorld`] into
//! the initial epoch (per-shard indexes built in parallel, pair table
//! partitioned by the router, aggregates computed once) and wires up a
//! [`TimelineEngine`] with its delta feed enabled. From then on the
//! write path is: `step` the engine, drain its [`EngineFeed`], and
//! bring a retired epoch buffer forward by replaying the feed log —
//! splicing candidate deltas into the per-shard compiled indexes when
//! the engine's own cost model ([`patch_beats_rebuild`]) favors it, or
//! rebuilding the affected shard from the engine's registries when it
//! does not (or when a splice reports failure mid-epoch). Readers keep
//! answering against the published epoch throughout; publication is a
//! single pointer rotation.

use crate::epoch::{EpochRegistry, EpochSnapshot, ShardState, SnapshotHandle};
use crate::query::{ConformanceSummary, HegemonySummary, ServiceClient};
use crate::shard::ShardRouter;
use manrs_bgp::{par_map, ParallelConfig};
use manrs_ihr::{IhrSnapshot, VantageSelector};
use manrs_irr::{CompiledIrrIndex, IrrStatus};
use manrs_net::{Asn, BatchScratch, Date, Prefix};
use manrs_rpki::{CompiledVrpIndex, RpkiStatus};
use manrs_scenario::{
    patch_beats_rebuild, EngineFeed, EngineStats, RegistryDelta, ScenarioWorld, SeriesStep,
    TimelineEngine,
};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// When the writer publishes a fresh epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationPolicy {
    /// Publish after every applied step — the lowest stale-read window.
    EveryStep,
    /// Publish after every `n` applied steps, coalescing their feeds
    /// into one epoch build (`Coalesce(1)` ≡ `EveryStep`).
    Coalesce(usize),
}

/// Work counters for the service writer, alongside the engine's own.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServiceStats {
    /// Steps applied through [`SnapshotService::apply`].
    pub steps_applied: usize,
    /// Epochs published (the initial build is epoch 0, not counted).
    pub epochs_published: u64,
    /// Candidate deltas spliced in place into shard indexes.
    pub index_patches: usize,
    /// Shard indexes rebuilt from the engine registries. Zero at
    /// steady state.
    pub index_rebuilds: usize,
    /// Splices that reported failure and dirtied their shard.
    pub patch_failures: usize,
    /// Epoch builds that fell back to cloning the current snapshot
    /// because no spare buffer was reclaimable in time. Zero at steady
    /// state.
    pub epoch_clones: usize,
    /// Automatic `compact()` passes triggered inside shard splices —
    /// previously only visible via `profile_batch --patch`.
    pub compactions: usize,
    /// Pair statuses patched into epoch buffers.
    pub rows_patched: usize,
    /// Accumulated [`manrs_net::PatchStats::spine_steps`].
    pub patch_spine_steps: usize,
    /// Accumulated [`manrs_net::PatchStats::slots_moved`].
    pub patch_slots_moved: usize,
    /// Accumulated [`manrs_net::PatchStats::nodes_fixed`].
    pub patch_nodes_fixed: usize,
    /// High-water arena fragmentation across shard VRP indexes.
    pub max_fragmentation_vrp: f64,
    /// High-water arena fragmentation across shard IRR indexes.
    pub max_fragmentation_irr: f64,
    /// The embedded engine's own counters.
    pub engine: EngineStats,
}

/// Builder-style configuration of a [`SnapshotService`], in the same
/// shape as `TableCollector` / `ScenarioWorldBuilder`.
pub struct ServiceBuilder<'w> {
    world: &'w ScenarioWorld,
    shards: usize,
    workers: ParallelConfig,
    rotation: RotationPolicy,
    reader_slots: usize,
    spare_buffers: usize,
    recycle_wait: Duration,
    headroom: usize,
    start_date: Option<Date>,
}

impl<'w> ServiceBuilder<'w> {
    /// Defaults: 8 shards, `MANRS_THREADS` workers, rotation on every
    /// step, 64 lock-free reader slots, 2 spare epoch buffers, and the
    /// world's snapshot date as the starting epoch.
    pub fn new(world: &'w ScenarioWorld) -> Self {
        ServiceBuilder {
            world,
            shards: 8,
            workers: ParallelConfig::from_env(),
            rotation: RotationPolicy::EveryStep,
            reader_slots: 64,
            spare_buffers: 2,
            recycle_wait: Duration::from_millis(2),
            headroom: 256,
            start_date: None,
        }
    }

    /// Shard count (clamped to `1..=`[`crate::shard::MAX_SHARDS`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Worker pool for the initial per-shard compile.
    pub fn workers(mut self, workers: ParallelConfig) -> Self {
        self.workers = workers;
        self
    }

    /// Epoch rotation policy.
    pub fn rotation(mut self, rotation: RotationPolicy) -> Self {
        self.rotation = rotation;
        self
    }

    /// Lock-free reader pin slots; clients beyond this fall back to a
    /// short-lock acquire path.
    pub fn reader_slots(mut self, slots: usize) -> Self {
        self.reader_slots = slots;
        self
    }

    /// Pre-built spare epoch buffers (double/triple buffering).
    pub fn spare_buffers(mut self, buffers: usize) -> Self {
        self.spare_buffers = buffers;
        self
    }

    /// How long the writer waits for a reclaimable spare before paying
    /// a full clone of the current epoch.
    pub fn recycle_wait(mut self, wait: Duration) -> Self {
        self.recycle_wait = wait;
        self
    }

    /// Arena headroom reserved per shard index so steady-state splices
    /// stay allocation-free.
    pub fn headroom(mut self, slots: usize) -> Self {
        self.headroom = slots;
        self
    }

    /// Starting epoch date (default: the world's snapshot date).
    pub fn start_date(mut self, date: Date) -> Self {
        self.start_date = Some(date);
        self
    }

    /// Builds epoch 0 and the service around it.
    pub fn build(self) -> SnapshotService<'w> {
        let date = self.start_date.unwrap_or(self.world.config.snapshot_date);
        let mut engine = TimelineEngine::new(self.world, date);
        engine.enable_feed();
        let router = ShardRouter::new(self.shards);
        let n = router.shards();

        // Partition the visible pair table (the interned RIB's distinct
        // pairs) by the query shard of each prefix.
        let mut slot_map = Vec::with_capacity(engine.pair_count());
        let mut shard_pairs: Vec<Vec<(Prefix, Asn)>> = vec![Vec::new(); n];
        let mut shard_status: Vec<Vec<(RpkiStatus, IrrStatus)>> = vec![Vec::new(); n];
        let mut conformance = ConformanceSummary::default();
        for (pair, status) in engine.pairs().iter().zip(engine.statuses()) {
            let shard = router.shard_of(&pair.0);
            slot_map.push((shard as u32, shard_pairs[shard].len() as u32));
            shard_pairs[shard].push(*pair);
            shard_status[shard].push(*status);
            conformance.record(status.0, status.1);
        }

        // Compile every shard's candidate slice in parallel.
        let shard_ids: Vec<usize> = (0..n).collect();
        let headroom = self.headroom;
        let (vrps, irr) = (engine.vrps(), engine.irr());
        let indexes = par_map(&self.workers, &shard_ids, |&shard| {
            let mut vrp = CompiledVrpIndex::build_where(vrps, |p| router.spans_shard(p, shard));
            let mut irr_index =
                CompiledIrrIndex::build_where(irr, |p| router.spans_shard(p, shard));
            vrp.reserve_headroom(headroom);
            irr_index.reserve_headroom(headroom);
            (vrp, irr_index)
        });
        let shards: Vec<ShardState> = indexes
            .into_iter()
            .zip(shard_pairs.into_iter().zip(shard_status))
            .map(|((vrp, irr), (pairs, status))| ShardState { vrp, irr, pairs, status })
            .collect();

        let initial = EpochSnapshot {
            epoch: 0,
            feed_pos: 0,
            date,
            router,
            shards,
            slot_map: Arc::new(slot_map),
            hegemony: Arc::new(aggregate_hegemony(&self.world.ihr)),
            vantage_value: Arc::new(
                VantageSelector::new(&self.world.rib).parallel(self.workers).rank(),
            ),
            conformance,
        };
        // Spare buffers are full clones of epoch 0, so steady-state
        // rotation recycles them instead of ever cloning live.
        let spares = (0..self.spare_buffers).map(|_| Arc::new(initial.clone())).collect();
        let registry = Arc::new(EpochRegistry::new(self.reader_slots, Arc::new(initial)));
        let writer = ServiceWriter {
            engine,
            router,
            spares,
            feed_log: VecDeque::new(),
            feed_base: 0,
            published_pos: 0,
            next_epoch: 1,
            steps_since_publish: 0,
            policy: self.rotation,
            recycle_wait: self.recycle_wait,
            headroom,
            vrp_counts: Vec::new(),
            irr_counts: Vec::new(),
            dirty_vrp: Vec::new(),
            dirty_irr: Vec::new(),
            stats: ServiceStats::default(),
        };
        SnapshotService { registry, writer: Mutex::new(writer) }
    }
}

/// The sharded snapshot query service. Any number of concurrent
/// readers ([`SnapshotService::client`]); one writer at a time
/// ([`SnapshotService::apply`], internally serialized).
pub struct SnapshotService<'w> {
    registry: Arc<EpochRegistry>,
    writer: Mutex<ServiceWriter<'w>>,
}

impl<'w> SnapshotService<'w> {
    /// Starts configuring a service over `world`.
    pub fn builder(world: &'w ScenarioWorld) -> ServiceBuilder<'w> {
        ServiceBuilder::new(world)
    }

    /// A new reader with its own pin slot and warm buffers.
    pub fn client(&self) -> ServiceClient {
        let shards = self.registry.acquire(None).router().shards();
        ServiceClient::new(Arc::clone(&self.registry), shards)
    }

    /// The current epoch, via the locked (slot-less) acquire path.
    pub fn handle(&self) -> SnapshotHandle {
        self.registry.acquire(None)
    }

    /// Total visible pairs served.
    pub fn pair_count(&self) -> usize {
        self.handle().pair_count()
    }

    /// Applies one timeline step and rotates epochs per policy.
    pub fn apply<I: IntoIterator<Item = RegistryDelta>>(&self, date: Date, deltas: I) {
        let mut writer = self.writer.lock().unwrap();
        writer.apply(date, deltas, &self.registry);
    }

    /// Applies one prepared series step.
    pub fn apply_step(&self, step: &SeriesStep) {
        self.apply(step.date, step.deltas.iter().cloned());
    }

    /// Publishes any feed entries not yet reflected in the current
    /// epoch (a no-op when rotation already caught up).
    pub fn flush(&self) {
        let mut writer = self.writer.lock().unwrap();
        if writer.published_pos < writer.feed_len() {
            writer.publish_epoch(&self.registry);
        }
    }

    /// Writer + engine work counters.
    pub fn stats(&self) -> ServiceStats {
        let writer = self.writer.lock().unwrap();
        let mut stats = writer.stats;
        stats.engine = writer.engine.stats();
        stats
    }

    /// End-to-end self-check: flushes, then asserts the published
    /// epoch's statuses equal the engine's slot-for-slot AND that
    /// re-validating every pair through the shard indexes reproduces
    /// the stored statuses. `true` when fully consistent.
    pub fn verify(&self) -> bool {
        self.flush();
        let writer = self.writer.lock().unwrap();
        let snap = self.registry.acquire(None);
        if snap.collect_statuses() != writer.engine.statuses() {
            return false;
        }
        let mut scratch = BatchScratch::new();
        let (mut rpki_buf, mut irr_buf) = (Vec::new(), Vec::new());
        for shard in snap.shards() {
            shard.vrp.validate_batch_into(&shard.pairs, &mut scratch, &mut rpki_buf);
            shard.irr.validate_batch_into(&shard.pairs, &mut scratch, &mut irr_buf);
            for (local, &stored) in shard.status.iter().enumerate() {
                if (rpki_buf[local], irr_buf[local]) != stored {
                    return false;
                }
            }
        }
        true
    }
}

/// The write side: the live engine, the feed log, and the buffer pool.
struct ServiceWriter<'w> {
    engine: TimelineEngine<'w>,
    router: ShardRouter,
    /// Reclaimed epoch buffers awaiting reuse.
    spares: Vec<Arc<EpochSnapshot>>,
    /// Drained engine feeds not yet reflected in every live buffer;
    /// `feed_log[0]` is absolute position `feed_base`.
    feed_log: VecDeque<EngineFeed>,
    feed_base: usize,
    /// Absolute feed position of the last published epoch.
    published_pos: usize,
    next_epoch: u64,
    steps_since_publish: usize,
    policy: RotationPolicy,
    recycle_wait: Duration,
    headroom: usize,
    vrp_counts: Vec<usize>,
    irr_counts: Vec<usize>,
    dirty_vrp: Vec<bool>,
    dirty_irr: Vec<bool>,
    stats: ServiceStats,
}

impl ServiceWriter<'_> {
    fn feed_len(&self) -> usize {
        self.feed_base + self.feed_log.len()
    }

    fn apply<I: IntoIterator<Item = RegistryDelta>>(
        &mut self,
        date: Date,
        deltas: I,
        registry: &EpochRegistry,
    ) {
        self.engine.step(date, deltas);
        let feed = self.engine.take_feed().expect("service engines always feed");
        self.stats.steps_applied += 1;
        if !feed.is_empty() {
            self.feed_log.push_back(feed);
        }
        self.steps_since_publish += 1;
        let due = match self.policy {
            RotationPolicy::EveryStep => true,
            RotationPolicy::Coalesce(n) => self.steps_since_publish >= n.max(1),
        };
        if due {
            self.publish_epoch(registry);
        }
    }

    /// Builds and publishes the next epoch: recycle a buffer, replay
    /// the feed log into it, rotate.
    fn publish_epoch(&mut self, registry: &EpochRegistry) {
        let mut buf = self.acquire_buffer(registry);
        self.patch_buffer(&mut buf);
        self.published_pos = buf.feed_pos;
        registry.publish(Arc::new(buf));
        self.stats.epochs_published += 1;
        self.steps_since_publish = 0;
        // Trim feed entries every live buffer has already replayed.
        let oldest = registry.reclaim_into(&mut self.spares);
        let oldest = self.spares.iter().map(|s| s.feed_pos).fold(oldest, usize::min);
        while self.feed_base < oldest {
            self.feed_log.pop_front();
            self.feed_base += 1;
        }
    }

    /// A mutable epoch buffer: a reclaimed spare when one is free
    /// within the recycle wait, else a clone of the current epoch
    /// (counted — steady state must never clone).
    fn acquire_buffer(&mut self, registry: &EpochRegistry) -> EpochSnapshot {
        let deadline = Instant::now() + self.recycle_wait;
        loop {
            registry.reclaim_into(&mut self.spares);
            if let Some(i) =
                (0..self.spares.len()).find(|&i| Arc::strong_count(&self.spares[i]) == 1)
            {
                match Arc::try_unwrap(self.spares.swap_remove(i)) {
                    Ok(buf) if buf.feed_pos >= self.feed_base => return buf,
                    // Trimmed past its resume point: unpatchable, drop.
                    Ok(_) => continue,
                    Err(arc) => self.spares.push(arc),
                }
            }
            if Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_micros(50));
        }
        self.stats.epoch_clones += 1;
        (*registry.acquire(None)).clone()
    }

    /// Replays `feed_log[buf.feed_pos..]` into `buf`: splice candidate
    /// deltas per shard (or dirty the shard when the cost model says
    /// rebuild / a splice fails), patch pair statuses and the
    /// conformance histogram, then rebuild dirty shards from the
    /// engine's registries — which are exactly the feed-complete
    /// target state, because feeds are drained synchronously with
    /// engine steps.
    fn patch_buffer(&mut self, buf: &mut EpochSnapshot) {
        let n = self.router.shards();
        let start = buf.feed_pos - self.feed_base;

        // Cost-model pre-pass: pending splices per shard, per index.
        self.vrp_counts.clear();
        self.vrp_counts.resize(n, 0);
        self.irr_counts.clear();
        self.irr_counts.resize(n, 0);
        for feed in self.feed_log.iter().skip(start) {
            for (vrp, _) in &feed.vrp {
                for shard in self.router.shards_spanned(&vrp.prefix) {
                    self.vrp_counts[shard] += 1;
                }
            }
            for (prefix, _, _) in &feed.irr {
                for shard in self.router.shards_spanned(prefix) {
                    self.irr_counts[shard] += 1;
                }
            }
        }
        self.dirty_vrp.clear();
        self.dirty_irr.clear();
        for shard in 0..n {
            self.dirty_vrp.push(
                self.vrp_counts[shard] > 0
                    && !patch_beats_rebuild(
                        self.vrp_counts[shard],
                        buf.shards[shard].vrp.candidate_count(),
                    ),
            );
            self.dirty_irr.push(
                self.irr_counts[shard] > 0
                    && !patch_beats_rebuild(
                        self.irr_counts[shard],
                        buf.shards[shard].irr.candidate_count(),
                    ),
            );
        }

        for feed in self.feed_log.iter().skip(start) {
            for &(vrp, added) in &feed.vrp {
                for shard in self.router.shards_spanned(&vrp.prefix) {
                    if self.dirty_vrp[shard] {
                        continue;
                    }
                    match buf.shards[shard].vrp.apply_roa_delta_stats(&vrp, added) {
                        Some((patch, compacted)) => {
                            self.stats.index_patches += 1;
                            self.stats.compactions += compacted as usize;
                            self.stats.patch_spine_steps += patch.spine_steps;
                            self.stats.patch_slots_moved += patch.slots_moved;
                            self.stats.patch_nodes_fixed += patch.nodes_fixed;
                        }
                        None => {
                            self.dirty_vrp[shard] = true;
                            self.stats.patch_failures += 1;
                        }
                    }
                }
            }
            for &(prefix, origin, added) in &feed.irr {
                for shard in self.router.shards_spanned(&prefix) {
                    if self.dirty_irr[shard] {
                        continue;
                    }
                    match buf.shards[shard].irr.apply_object_delta_stats(&prefix, origin, added) {
                        Some((patch, compacted)) => {
                            self.stats.index_patches += 1;
                            self.stats.compactions += compacted as usize;
                            self.stats.patch_spine_steps += patch.spine_steps;
                            self.stats.patch_slots_moved += patch.slots_moved;
                            self.stats.patch_nodes_fixed += patch.nodes_fixed;
                        }
                        None => {
                            self.dirty_irr[shard] = true;
                            self.stats.patch_failures += 1;
                        }
                    }
                }
            }
            for &(slot, rpki, irr) in &feed.status {
                let (shard, local) = buf.slot_map[slot];
                let state = &mut buf.shards[shard as usize];
                let old = state.status[local as usize];
                buf.conformance.unrecord(old.0, old.1);
                buf.conformance.record(rpki, irr);
                state.status[local as usize] = (rpki, irr);
                self.stats.rows_patched += 1;
            }
        }

        for shard in 0..n {
            if self.dirty_vrp[shard] {
                let router = self.router;
                let mut vrp = CompiledVrpIndex::build_where(self.engine.vrps(), |p| {
                    router.spans_shard(p, shard)
                });
                vrp.reserve_headroom(self.headroom);
                buf.shards[shard].vrp = vrp;
                self.stats.index_rebuilds += 1;
            }
            if self.dirty_irr[shard] {
                let router = self.router;
                let mut irr = CompiledIrrIndex::build_where(self.engine.irr(), |p| {
                    router.spans_shard(p, shard)
                });
                irr.reserve_headroom(self.headroom);
                buf.shards[shard].irr = irr;
                self.stats.index_rebuilds += 1;
            }
            let state = &buf.shards[shard];
            self.stats.max_fragmentation_vrp =
                self.stats.max_fragmentation_vrp.max(state.vrp.fragmentation());
            self.stats.max_fragmentation_irr =
                self.stats.max_fragmentation_irr.max(state.irr.fragmentation());
        }

        buf.feed_pos = self.feed_len();
        buf.date = self.engine.date();
        buf.epoch = self.next_epoch;
        self.next_epoch += 1;
    }
}

/// Per-AS transit aggregates over the (path-invariant) transit rows.
fn aggregate_hegemony(ihr: &IhrSnapshot) -> BTreeMap<Asn, HegemonySummary> {
    let mut sums: BTreeMap<Asn, (usize, f64, f64)> = BTreeMap::new();
    for transit in &ihr.transits {
        let entry = sums.entry(transit.transit).or_insert((0, 0.0, 0.0));
        entry.0 += 1;
        entry.1 += transit.hegemony;
        entry.2 = entry.2.max(transit.hegemony);
    }
    sums.into_iter()
        .map(|(asn, (rows, sum, max))| {
            (asn, HegemonySummary { transit_rows: rows, mean: sum / rows as f64, max })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Query, QueryResponse};
    use manrs_scenario::{weekly_steps, ScenarioConfig};

    fn world() -> ScenarioWorld {
        ScenarioWorld::builder(ScenarioConfig::small(19)).build()
    }

    /// Weekly steps start 2022-02-01, before the world's snapshot
    /// date — replaying services must start there too.
    fn replay_start() -> Date {
        Date::ymd(2022, 2, 1)
    }

    #[test]
    fn initial_epoch_serves_the_engine_state() {
        let w = world();
        let service = SnapshotService::builder(&w).shards(4).build();
        let snap = service.handle();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.date(), w.config.snapshot_date);
        assert_eq!(snap.conformance().total(), service.pair_count() as u64);
        assert!(service.verify());
    }

    #[test]
    fn hegemony_lookups_aggregate_transit_rows() {
        let w = world();
        let service = SnapshotService::builder(&w).shards(2).build();
        let mut client = service.client();
        let transit = w.ihr.transits.first().expect("world has transit rows").transit;
        let rows = w.ihr.transits.iter().filter(|t| t.transit == transit).count();
        match client.query(&Query::Hegemony { asn: transit }) {
            QueryResponse::Hegemony { summary: Some(summary), .. } => {
                assert_eq!(summary.transit_rows, rows);
                assert!(summary.max >= summary.mean && summary.mean > 0.0);
            }
            other => panic!("unexpected response {other:?}"),
        }
        match client.query(&Query::Hegemony { asn: Asn(u32::MAX) }) {
            QueryResponse::Hegemony { summary: None, .. } => {}
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn vantage_value_query_serves_the_build_time_ranking() {
        let w = world();
        let service =
            SnapshotService::builder(&w).shards(2).start_date(replay_start()).build();
        let mut client = service.client();
        let expected = VantageSelector::new(&w.rib).rank();
        match client.query(&Query::VantageValue) {
            QueryResponse::VantageValue { epoch: 0, ranking } => {
                assert_eq!(ranking, expected, "served ranking must match a direct rank()");
                assert_eq!(ranking.scores.len(), ranking.rib_vantages.len());
                assert!(!ranking.scores.is_empty(), "small worlds still have vantages");
            }
            other => panic!("unexpected response {other:?}"),
        }
        // Epoch rotation does not recompute the (path-invariant) ranking.
        for step in weekly_steps(&w, 2, 0.05, w.config.seed) {
            service.apply_step(&step);
        }
        match client.query(&Query::VantageValue) {
            QueryResponse::VantageValue { epoch, ranking } => {
                assert!(epoch > 0);
                assert_eq!(ranking, expected);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn rotation_policy_coalesces_epochs() {
        let w = world();
        let steps = weekly_steps(&w, 9, 0.05, w.config.seed);
        let eager = SnapshotService::builder(&w)
            .rotation(RotationPolicy::EveryStep)
            .start_date(replay_start())
            .build();
        let lazy = SnapshotService::builder(&w)
            .rotation(RotationPolicy::Coalesce(3))
            .start_date(replay_start())
            .build();
        for step in &steps {
            eager.apply_step(step);
            lazy.apply_step(step);
        }
        assert_eq!(eager.stats().epochs_published, 9);
        assert_eq!(lazy.stats().epochs_published, 3);
        // Both end feed-complete and identical after a flush.
        lazy.flush();
        assert_eq!(eager.handle().collect_statuses(), lazy.handle().collect_statuses());
        assert!(eager.verify() && lazy.verify());
    }

    #[test]
    fn steady_state_rotation_recycles_buffers() {
        let w = world();
        let service = SnapshotService::builder(&w)
            .shards(4)
            .spare_buffers(2)
            .start_date(replay_start())
            .build();
        for step in weekly_steps(&w, 12, 0.05, w.config.seed) {
            service.apply_step(&step);
        }
        let stats = service.stats();
        assert_eq!(stats.epochs_published, 12);
        assert_eq!(stats.index_rebuilds, 0, "weekly churn must patch, not rebuild: {stats:?}");
        assert_eq!(stats.epoch_clones, 0, "spare buffers must recycle: {stats:?}");
        assert!(stats.index_patches > 0);
        assert!(service.verify());
    }

    #[test]
    fn conformance_histogram_tracks_status_changes() {
        let w = world();
        let service = SnapshotService::builder(&w).shards(4).start_date(replay_start()).build();
        let before = service.handle().conformance();
        for step in weekly_steps(&w, 8, 0.1, w.config.seed) {
            service.apply_step(&step);
        }
        let after = service.handle().conformance();
        assert_eq!(after.total(), before.total(), "pair universe is fixed");
        let stats = service.stats();
        if stats.rows_patched > 0 {
            assert_ne!(after, before, "patched rows must move histogram cells");
        }
        // The histogram always equals a recount of the served statuses.
        let mut recount = ConformanceSummary::default();
        for (rpki, irr) in service.handle().collect_statuses() {
            recount.record(rpki, irr);
        }
        assert_eq!(after, recount);
    }

    /// Degenerate builder knobs clamp rather than break: `shards(0)`
    /// folds to one shard ([`ShardRouter::new`] clamps to `1..=256`)
    /// and `reader_slots(0)` keeps at least one pin slot, so readers
    /// fall back to the short-lock acquire path instead of deadlocking.
    #[test]
    fn zero_shards_and_zero_reader_slots_still_serve() {
        let w = world();
        let service = SnapshotService::builder(&w)
            .shards(0)
            .reader_slots(0)
            .start_date(replay_start())
            .build();
        assert!(service.pair_count() > 0);
        assert!(service.verify());

        // Queries answer through the clamped configuration, and the
        // single folded shard classifies identically to a multi-shard
        // build of the same world.
        let reference = SnapshotService::builder(&w).shards(8).start_date(replay_start()).build();
        assert_eq!(service.pair_count(), reference.pair_count());
        let pairs: Vec<(Prefix, Asn)> =
            w.announcements.iter().map(|a| (a.prefix, a.origin)).take(64).collect();
        let mut client = service.client();
        let mut ref_client = reference.client();
        let q = Query::ValidatePairs { pairs };
        match (client.query(&q), ref_client.query(&q)) {
            (
                QueryResponse::Statuses { statuses, .. },
                QueryResponse::Statuses { statuses: expected, .. },
            ) => assert_eq!(statuses, expected),
            other => panic!("unexpected responses {other:?}"),
        }

        // Replay still publishes epochs through the degenerate knobs.
        for step in weekly_steps(&w, 4, 0.05, w.config.seed) {
            service.apply_step(&step);
        }
        assert!(service.stats().epochs_published >= 1);
        assert!(service.verify());
    }
}
