//! Immutable epoch snapshots and the lock-free read-side registry.
//!
//! One [`EpochSnapshot`] is the complete, frozen serving state of one
//! epoch: per-shard compiled indexes, per-shard pair tables with their
//! validated statuses, and the epoch-wide aggregates. Readers acquire a
//! [`SnapshotHandle`] and query it for as long as they like; the writer
//! never mutates a published snapshot — it patches a *retired* buffer
//! (or a clone) forward and publishes it as the next epoch.
//!
//! The registry's read path is lock-free via epoch pinning. Each client
//! owns one pin slot (an `AtomicU64`, `u64::MAX` when idle). Acquire
//! is: read the epoch counter `e`, publish `e` in the pin slot, confirm
//! the counter is still `e`, then load the current snapshot pointer and
//! take a reference to it. The writer retires snapshots on publish but
//! only *reclaims* (hands back for reuse) those whose epoch is strictly
//! below every pinned epoch — so the pointer a confirmed reader loads
//! always has epoch ≥ its pin and therefore always holds at least one
//! registry-owned strong reference while the reader increments the
//! count. All atomics use `SeqCst`: rotation happens a handful of times
//! per second at most, while reads must stay obviously correct.

use crate::query::{ConformanceSummary, HegemonySummary};
use crate::shard::ShardRouter;
use manrs_ihr::VantageRanking;
use manrs_irr::{CompiledIrrIndex, IrrStatus};
use manrs_net::{Asn, Date, Prefix};
use manrs_rpki::{CompiledVrpIndex, RpkiStatus};
use std::collections::{BTreeMap, VecDeque};
use std::ops::Deref;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering::SeqCst};
use std::sync::{Arc, Mutex};

/// One shard's slice of the serving state: its compiled indexes
/// (candidates replicated per the router's span contract) and the
/// pairs routed to it with their current statuses.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// Compiled VRP index over the candidates spanning this shard.
    pub vrp: CompiledVrpIndex,
    /// Compiled route-object index over the candidates spanning it.
    pub irr: CompiledIrrIndex,
    /// The visible pairs routed to this shard, in global slot order.
    pub pairs: Vec<(Prefix, Asn)>,
    /// Current (rpki, irr) status per local pair.
    pub status: Vec<(RpkiStatus, IrrStatus)>,
}

/// The frozen serving state of one epoch.
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// Monotone epoch number; epoch 0 is the initial build.
    pub(crate) epoch: u64,
    /// Absolute feed position this snapshot is current through — the
    /// writer's resume point when recycling this buffer.
    pub(crate) feed_pos: usize,
    pub(crate) date: Date,
    pub(crate) router: ShardRouter,
    pub(crate) shards: Vec<ShardState>,
    /// Global slot → (shard, local index); fixed for the service's
    /// lifetime, shared by every epoch.
    pub(crate) slot_map: Arc<Vec<(u32, u32)>>,
    /// Per-AS transit hegemony aggregates; paths are fixed, so this is
    /// epoch-invariant and shared.
    pub(crate) hegemony: Arc<BTreeMap<Asn, HegemonySummary>>,
    /// Greedy marginal-coverage ranking of the world's vantage points;
    /// like `hegemony`, path-derived and therefore epoch-invariant.
    pub(crate) vantage_value: Arc<VantageRanking>,
    pub(crate) conformance: ConformanceSummary,
}

impl EpochSnapshot {
    /// The epoch number.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The engine date this epoch serves.
    pub fn date(&self) -> Date {
        self.date
    }

    /// The router shared by every epoch of this service.
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The per-shard serving state.
    pub fn shards(&self) -> &[ShardState] {
        &self.shards
    }

    /// Total visible pairs across shards.
    pub fn pair_count(&self) -> usize {
        self.slot_map.len()
    }

    /// The epoch's conformance histogram over all visible pairs.
    pub fn conformance(&self) -> ConformanceSummary {
        self.conformance
    }

    /// The hegemony aggregate of one transit AS, if it transits at all.
    pub fn hegemony(&self, asn: Asn) -> Option<HegemonySummary> {
        self.hegemony.get(&asn).copied()
    }

    /// The marginal-coverage ranking of the world's vantage points,
    /// computed once at service build.
    pub fn vantage_value(&self) -> &VantageRanking {
        &self.vantage_value
    }

    /// The statuses of every visible pair in global slot order —
    /// un-shards the per-shard tables. Allocates; meant for
    /// verification and tests, not the serving path.
    pub fn collect_statuses(&self) -> Vec<(RpkiStatus, IrrStatus)> {
        self.slot_map
            .iter()
            .map(|&(shard, local)| self.shards[shard as usize].status[local as usize])
            .collect()
    }

    /// The pairs in global slot order; same caveat as
    /// [`EpochSnapshot::collect_statuses`].
    pub fn collect_pairs(&self) -> Vec<(Prefix, Asn)> {
        self.slot_map
            .iter()
            .map(|&(shard, local)| self.shards[shard as usize].pairs[local as usize])
            .collect()
    }
}

/// A reader's reference to one epoch. Holding a handle keeps exactly
/// that epoch alive (and bit-for-bit frozen) regardless of how many
/// epochs the writer publishes meanwhile.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    inner: Arc<EpochSnapshot>,
}

impl Deref for SnapshotHandle {
    type Target = EpochSnapshot;

    fn deref(&self) -> &EpochSnapshot {
        &self.inner
    }
}

struct RegistryInner {
    /// The registry's own reference to the published snapshot.
    current_arc: Arc<EpochSnapshot>,
    /// Previously published snapshots, oldest first, awaiting
    /// reclamation once no pin can still reach them.
    retired: VecDeque<Arc<EpochSnapshot>>,
}

/// The epoch rotation point: one writer publishes, any number of
/// readers acquire without blocking.
pub(crate) struct EpochRegistry {
    /// Raw pointer to the inside of `inner.current_arc`, readable
    /// without the lock.
    current: AtomicPtr<EpochSnapshot>,
    /// Epoch counter, stored after `current` on publish.
    epoch: AtomicU64,
    /// Per-client pin slots; `u64::MAX` = idle.
    pins: Box<[AtomicU64]>,
    next_slot: AtomicUsize,
    inner: Mutex<RegistryInner>,
}

impl EpochRegistry {
    pub(crate) fn new(reader_slots: usize, initial: Arc<EpochSnapshot>) -> Self {
        let pins = (0..reader_slots.max(1)).map(|_| AtomicU64::new(u64::MAX)).collect();
        EpochRegistry {
            current: AtomicPtr::new(Arc::as_ptr(&initial) as *mut EpochSnapshot),
            epoch: AtomicU64::new(initial.epoch),
            pins,
            next_slot: AtomicUsize::new(0),
            inner: Mutex::new(RegistryInner { current_arc: initial, retired: VecDeque::new() }),
        }
    }

    /// Claims a dedicated pin slot for a new client; `None` once all
    /// slots are taken (those clients fall back to the locked path).
    pub(crate) fn claim_slot(&self) -> Option<usize> {
        let slot = self.next_slot.fetch_add(1, SeqCst);
        (slot < self.pins.len()).then_some(slot)
    }

    /// Acquires the current snapshot. With a pin slot this is the
    /// lock-free, allocation-free path; without one it takes the
    /// registry lock for the duration of an `Arc` clone.
    pub(crate) fn acquire(&self, slot: Option<usize>) -> SnapshotHandle {
        let Some(slot) = slot else {
            let inner = self.inner.lock().unwrap();
            return SnapshotHandle { inner: Arc::clone(&inner.current_arc) };
        };
        let pin = &self.pins[slot];
        loop {
            let e = self.epoch.load(SeqCst);
            pin.store(e, SeqCst);
            if self.epoch.load(SeqCst) != e {
                continue;
            }
            // The pin is visible and the epoch did not move past it, so
            // every snapshot with epoch ≥ e — including whatever
            // `current` points at now — keeps a registry-owned strong
            // reference until we unpin. Incrementing its count is
            // therefore safe.
            let ptr = self.current.load(SeqCst);
            let inner = unsafe {
                Arc::increment_strong_count(ptr);
                Arc::from_raw(ptr)
            };
            pin.store(u64::MAX, SeqCst);
            return SnapshotHandle { inner };
        }
    }

    /// The smallest currently pinned epoch, or `u64::MAX` when no
    /// reader is mid-acquire.
    fn min_pinned(&self) -> u64 {
        self.pins.iter().map(|pin| pin.load(SeqCst)).min().unwrap_or(u64::MAX)
    }

    /// Publishes `next` as the new current epoch, retiring the old one.
    pub(crate) fn publish(&self, next: Arc<EpochSnapshot>) {
        let mut inner = self.inner.lock().unwrap();
        self.current.store(Arc::as_ptr(&next) as *mut EpochSnapshot, SeqCst);
        self.epoch.store(next.epoch, SeqCst);
        let old = std::mem::replace(&mut inner.current_arc, next);
        inner.retired.push_back(old);
    }

    /// Moves every retired snapshot no pin can still reach into
    /// `spares` (the writer's recycling pool) and reports the oldest
    /// feed position any registry-held snapshot is still at — the
    /// writer must keep feed entries from that position onward.
    pub(crate) fn reclaim_into(&self, spares: &mut Vec<Arc<EpochSnapshot>>) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let min_pinned = self.min_pinned();
        while inner.retired.front().is_some_and(|snap| snap.epoch < min_pinned) {
            spares.push(inner.retired.pop_front().unwrap());
        }
        inner.retired.front().map_or(inner.current_arc.feed_pos, |snap| snap.feed_pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(epoch: u64, feed_pos: usize) -> Arc<EpochSnapshot> {
        Arc::new(EpochSnapshot {
            epoch,
            feed_pos,
            date: Date::ymd(2022, 5, 1),
            router: ShardRouter::new(2),
            shards: Vec::new(),
            slot_map: Arc::new(Vec::new()),
            hegemony: Arc::new(BTreeMap::new()),
            vantage_value: Arc::new(VantageRanking::default()),
            conformance: ConformanceSummary::default(),
        })
    }

    #[test]
    fn acquire_sees_latest_publish_on_both_paths() {
        let registry = EpochRegistry::new(4, snapshot(0, 0));
        let slot = registry.claim_slot();
        assert_eq!(registry.acquire(slot).epoch(), 0);
        assert_eq!(registry.acquire(None).epoch(), 0);
        registry.publish(snapshot(1, 3));
        assert_eq!(registry.acquire(slot).epoch(), 1);
        assert_eq!(registry.acquire(None).epoch(), 1);
    }

    #[test]
    fn handles_keep_old_epochs_alive_until_dropped() {
        let registry = EpochRegistry::new(4, snapshot(0, 0));
        let slot = registry.claim_slot();
        let old = registry.acquire(slot);
        registry.publish(snapshot(1, 5));
        registry.publish(snapshot(2, 9));
        // The handle still reads its frozen epoch.
        assert_eq!(old.epoch(), 0);
        // Both displaced snapshots reclaim (no pins are held), but the
        // epoch-0 buffer is shared with `old` until it drops.
        let mut spares = Vec::new();
        let oldest = registry.reclaim_into(&mut spares);
        assert_eq!(spares.len(), 2);
        assert_eq!(oldest, 9, "only current remains registry-held");
        assert!(Arc::get_mut(&mut spares[0]).is_none(), "reader still holds epoch 0");
        drop(old);
        assert!(Arc::get_mut(&mut spares[0]).is_some());
        assert!(Arc::get_mut(&mut spares[1]).is_some());
    }

    #[test]
    fn slots_exhaust_gracefully() {
        let registry = EpochRegistry::new(2, snapshot(0, 0));
        assert!(registry.claim_slot().is_some());
        assert!(registry.claim_slot().is_some());
        assert!(registry.claim_slot().is_none());
    }

    #[test]
    fn retired_snapshots_survive_a_held_pin() {
        // Simulate a reader paused mid-acquire with its pin published:
        // nothing at or above the pinned epoch may reclaim.
        let registry = EpochRegistry::new(2, snapshot(3, 0));
        registry.pins[0].store(3, SeqCst);
        registry.publish(snapshot(4, 1));
        registry.publish(snapshot(5, 2));
        let mut spares = Vec::new();
        registry.reclaim_into(&mut spares);
        assert!(spares.is_empty(), "pinned epoch 3 must not reclaim");
        registry.pins[0].store(u64::MAX, SeqCst);
        registry.reclaim_into(&mut spares);
        assert_eq!(spares.len(), 2);
    }
}
