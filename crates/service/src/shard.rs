//! Query and candidate routing over `N` shards.
//!
//! The service folds the 512 family+first-octet buckets
//! ([`manrs_net::SHARD_BUCKETS`]) onto `N` shards by residue:
//! shard = bucket mod `N`. Queries go to exactly one shard
//! ([`ShardRouter::shard_of`]); candidates (VRPs, route objects) are
//! replicated into every shard their bucket span touches
//! ([`ShardRouter::shards_spanned`]) so the covering candidate of any
//! query is always present in the query's shard. Because a candidate's
//! bucket span is a consecutive range, the spanned shard set is
//! `min(span, N)` consecutive residues — replication cost is bounded by
//! the candidate's real octet footprint, and only family-wide prefixes
//! (length < 8 − log2 span) land in every shard.

use manrs_net::{shard_bucket, shard_bucket_span, Prefix};

/// Upper bound on the shard count: one shard per first octet of one
/// family is already far beyond useful parallelism.
pub const MAX_SHARDS: usize = 256;

/// Maps prefixes to shards for one fixed shard count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u16,
}

impl ShardRouter {
    /// A router over `shards` shards, clamped to `1..=`[`MAX_SHARDS`].
    pub fn new(shards: usize) -> Self {
        ShardRouter { shards: shards.clamp(1, MAX_SHARDS) as u16 }
    }

    /// The shard count.
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The shard a *query* at `prefix` is answered by.
    #[inline]
    pub fn shard_of(&self, prefix: &Prefix) -> usize {
        (shard_bucket(prefix) % self.shards) as usize
    }

    /// `true` when a *candidate* at `prefix` must be present in
    /// `shard` — i.e. some bucket of the candidate's span folds onto
    /// it. A query's own shard always satisfies this for every
    /// candidate able to cover the query.
    #[inline]
    pub fn spans_shard(&self, prefix: &Prefix, shard: usize) -> bool {
        let (lo, hi) = shard_bucket_span(prefix);
        let span = (hi - lo + 1) as usize;
        let n = self.shards as usize;
        span >= n || (shard + n - (lo % self.shards) as usize) % n < span
    }

    /// The shards a candidate at `prefix` must be replicated into:
    /// `min(span, N)` consecutive residues starting at its first
    /// bucket's shard.
    pub fn shards_spanned(&self, prefix: &Prefix) -> ShardSpan {
        let (lo, hi) = shard_bucket_span(prefix);
        let n = self.shards as usize;
        let span = ((hi - lo + 1) as usize).min(n);
        ShardSpan { next: (lo % self.shards) as usize, remaining: span, shards: n }
    }
}

/// Iterator over the consecutive shard residues of one candidate span.
#[derive(Debug, Clone, Copy)]
pub struct ShardSpan {
    next: usize,
    remaining: usize,
    shards: usize,
}

impl Iterator for ShardSpan {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.remaining == 0 {
            return None;
        }
        let shard = self.next;
        self.next = (self.next + 1) % self.shards;
        self.remaining -= 1;
        Some(shard)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for ShardSpan {}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_net::SHARD_BUCKETS;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        let r = ShardRouter::new(1);
        for s in ["10.0.0.0/8", "0.0.0.0/0", "2001:db8::/32"] {
            assert_eq!(r.shard_of(&p(s)), 0);
            assert!(r.spans_shard(&p(s), 0));
            assert_eq!(r.shards_spanned(&p(s)).collect::<Vec<_>>(), vec![0]);
        }
    }

    #[test]
    fn spanned_set_matches_membership_test() {
        for n in [1, 2, 3, 4, 7, 8, 13] {
            let r = ShardRouter::new(n);
            for s in ["10.0.0.0/8", "10.0.0.0/7", "8.0.0.0/5", "0.0.0.0/0", "2000::/3", "::/0"] {
                let prefix = p(s);
                let spanned: Vec<usize> = r.shards_spanned(&prefix).collect();
                assert!(spanned.len() <= n);
                for shard in 0..n {
                    assert_eq!(
                        spanned.contains(&shard),
                        r.spans_shard(&prefix, shard),
                        "{s} shard {shard}/{n}"
                    );
                }
            }
        }
    }

    #[test]
    fn covering_candidates_reach_the_query_shard() {
        let cases = [
            ("10.0.0.0/8", "10.1.0.0/16"),
            ("10.0.0.0/7", "11.0.0.0/8"),
            ("0.0.0.0/0", "192.0.2.0/24"),
            ("::/0", "2001:db8::/48"),
        ];
        for n in 1..=16 {
            let r = ShardRouter::new(n);
            for (cand, query) in cases {
                let (cand, query) = (p(cand), p(query));
                assert!(
                    r.spans_shard(&cand, r.shard_of(&query)),
                    "{cand} must reach {query}'s shard under N={n}"
                );
            }
        }
    }

    #[test]
    fn shard_count_is_clamped() {
        assert_eq!(ShardRouter::new(0).shards(), 1);
        assert_eq!(ShardRouter::new(100_000).shards(), MAX_SHARDS);
        assert!(MAX_SHARDS <= SHARD_BUCKETS as usize);
    }

    /// The bucket space is two 256-bucket halves — v4 then v6 — and
    /// the family boundary must hold at both edges: the v6 half starts
    /// at bucket 256 (`::/8`) and ends at 511 (`ff00::/8`), so a v6
    /// prefix never folds onto a v4 prefix's residue unless the shard
    /// count divides their 256-bucket offset.
    #[test]
    fn ipv6_bucket_family_boundaries() {
        // Same first octet, different family: the v6 twin lives
        // exactly 256 buckets up.
        let v4 = p("10.0.0.0/8");
        let v6 = p("a00::/8"); // first octet 0x0a = 10
        assert_eq!(shard_bucket(&v4), 10);
        assert_eq!(shard_bucket(&v6), 256 + 10);
        // 256 % 256 == 0: with a full-octet shard count the halves
        // overlay each other...
        let full = ShardRouter::new(256);
        assert_eq!(full.shard_of(&v4), full.shard_of(&v6));
        // ...while any count that does not divide 256 separates them.
        let odd = ShardRouter::new(255);
        assert_ne!(odd.shard_of(&v4), odd.shard_of(&v6));

        // Extremes of both halves.
        assert_eq!(shard_bucket(&p("0.0.0.0/8")), 0);
        assert_eq!(shard_bucket(&p("255.0.0.0/8")), 255);
        assert_eq!(shard_bucket(&p("::/128")), 256);
        assert_eq!(shard_bucket(&p("ff00::/8")), 511);
        assert_eq!(
            shard_bucket(&p("ffff:ffff::/32")),
            SHARD_BUCKETS - 1,
            "the last v6 octet is the last bucket"
        );

        // Each family's default route spans exactly its own half —
        // 256 buckets, truncated to the shard count — and wide v6
        // candidates stay inside the v6 half.
        assert_eq!(shard_bucket_span(&p("0.0.0.0/0")), (0, 255));
        assert_eq!(shard_bucket_span(&p("::/0")), (256, 511));
        assert_eq!(shard_bucket_span(&p("::/1")), (256, 256 + 127));
        assert_eq!(shard_bucket_span(&p("8000::/1")), (256 + 128, 511));
        for n in [1, 2, 3, 8, 255, 256] {
            let r = ShardRouter::new(n);
            assert_eq!(r.shards_spanned(&p("::/0")).len(), n.min(256));
            // A v6 default-route candidate must reach every v6 query.
            assert!(r.spans_shard(&p("::/0"), r.shard_of(&p("2001:db8::/48"))));
            assert!(r.spans_shard(&p("::/0"), r.shard_of(&p("ff00::/8"))));
        }
    }

    /// A single shard is the total fold: every bucket of both families
    /// lands on shard 0 and every candidate spans exactly it, so the
    /// sharded service degenerates to one unpartitioned index.
    #[test]
    fn single_shard_fold_covers_both_families() {
        let r = ShardRouter::new(1);
        for s in [
            "0.0.0.0/0",
            "0.0.0.0/8",
            "255.255.255.255/32",
            "::/0",
            "::/128",
            "ff00::/8",
            "ffff::/16",
        ] {
            let prefix = p(s);
            assert_eq!(r.shard_of(&prefix), 0, "{s}");
            assert!(r.spans_shard(&prefix, 0), "{s}");
            let span: Vec<usize> = r.shards_spanned(&prefix).collect();
            assert_eq!(span, vec![0], "{s}: span must collapse to the one shard");
        }
    }
}
