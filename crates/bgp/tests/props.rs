//! Property tests for route propagation: every produced path must be
//! loop-free and valley-free, preferences must be respected, and
//! filtering must only ever shrink reach.

use manrs_bgp::propagate::{propagate_dense, propagate_dense_into, DenseGraph, PropagationScratch};
use manrs_bgp::{
    propagate, validate_pairs_batch, Announcement, CollectionStrategy, ParallelConfig,
    PolicyExtension, PolicySet, PolicyTable, TableCollector,
};
use manrs_irr::{
    validate_irr, CompiledIrrIndex, IrrDatabase, IrrRegistry, IrrStatus, RouteObject,
};
use manrs_net::{Asn, Date, Ipv4Prefix, Prefix, Rir};
use manrs_rpki::{validate_origin, CompiledVrpIndex, RpkiStatus, Vrp, VrpSet};
use manrs_topology::{AsInfo, AsTopology, NetworkKind, OrgId, Relationship};
use proptest::prelude::*;

/// Builds a random layered topology guaranteed free of provider cycles:
/// each AS may only pick providers among lower-numbered ASes, peers
/// anywhere.
fn arb_topology() -> impl Strategy<Value = AsTopology> {
    (
        4usize..30,
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..40),
        prop::collection::vec((any::<u16>(), any::<u16>()), 0..15),
    )
        .prop_map(|(n, cp_seeds, pp_seeds)| {
            let mut t = AsTopology::new();
            for i in 0..n {
                t.add_as(AsInfo {
                    asn: Asn(i as u32 + 1),
                    org: OrgId(i as u32),
                    rir: Rir::Arin,
                    country: "US".into(),
                    kind: NetworkKind::Transit,
                });
            }
            for (a, b) in cp_seeds {
                let customer = (a as usize % n).max(1);
                let provider = b as usize % customer;
                t.add_provider_customer(Asn(provider as u32 + 1), Asn(customer as u32 + 1));
            }
            for (a, b) in pp_seeds {
                let x = a as usize % n;
                let y = b as usize % n;
                if x != y && t.relationship(Asn(x as u32 + 1), Asn(y as u32 + 1)).is_none() {
                    t.add_peer(Asn(x as u32 + 1), Asn(y as u32 + 1));
                }
            }
            t
        })
}

fn ann(origin: u32, rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
    Announcement::new("10.0.0.0/16".parse().unwrap(), Asn(origin), rpki, irr)
}

/// Small clustered prefix space so registrations and queries interact.
fn reg_prefix() -> impl Strategy<Value = Prefix> {
    (0u32..8, 8u8..=28).prop_map(|(net, len)| {
        let bits = 0x0A00_0000 | (net << 20);
        Prefix::V4(Ipv4Prefix::from_bits_truncated(bits, len).unwrap())
    })
}

/// Checks the Gao–Rexford export rules along a vantage→origin path.
fn assert_valley_free(t: &AsTopology, path: &[Asn]) {
    // Walk from origin toward the vantage (reverse) and track the phase:
    // climbing customer→provider links, then at most one peer link, then
    // descending provider→customer links.
    let mut phase = 0; // 0 = climbing, 1 = after peer, 2 = descending
    for w in path.windows(2).rev() {
        let (closer, further) = (w[0], w[1]); // further is nearer the origin
        let rel = t
            .relationship(closer, further)
            .expect("adjacent path hops are neighbors");
        match rel {
            // closer learned from its customer: still climbing.
            Relationship::Customer => {
                assert_eq!(phase, 0, "customer link after peer/descent in {path:?}");
            }
            Relationship::Peer => {
                assert_eq!(phase, 0, "second peer or peer after descent in {path:?}");
                phase = 1;
            }
            Relationship::Provider => {
                phase = 2;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// All produced paths are simple (no repeated AS) and valley-free.
    #[test]
    fn paths_are_simple_and_valley_free(t in arb_topology(), origin_seed in any::<u16>()) {
        let n = t.len() as u32;
        let origin = (origin_seed as u32 % n) + 1;
        let a = ann(origin, RpkiStatus::NotFound, IrrStatus::NotFound);
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        for asn in t.asns() {
            if let Some(path) = o.as_path(&g, asn) {
                prop_assert_eq!(*path.first().unwrap(), asn);
                prop_assert_eq!(*path.last().unwrap(), Asn(origin));
                let mut sorted = path.clone();
                sorted.sort();
                sorted.dedup();
                prop_assert_eq!(sorted.len(), path.len(), "loop in {:?}", path);
                assert_valley_free(&t, &path);
            }
        }
    }

    /// Path length equals the recorded hop count + 1.
    #[test]
    fn hops_match_path_length(t in arb_topology(), origin_seed in any::<u16>()) {
        let n = t.len() as u32;
        let origin = (origin_seed as u32 % n) + 1;
        let a = ann(origin, RpkiStatus::NotFound, IrrStatus::NotFound);
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        for asn in t.asns() {
            if let Some(entry) = o.route(&g, asn) {
                let path = o.as_path(&g, asn).expect("routed AS has a path");
                prop_assert_eq!(path.len() as u32, entry.hops + 1);
            }
        }
    }

    /// Universal ROV deployment can only shrink reach for invalid
    /// announcements, and never affects valid ones.
    #[test]
    fn filtering_is_monotone(t in arb_topology(), origin_seed in any::<u16>()) {
        let n = t.len() as u32;
        let origin = (origin_seed as u32 % n) + 1;
        let open = PolicyTable::default();
        let strict = PolicyTable::with_default(PolicySet::MANRS_CDN);

        let invalid = ann(origin, RpkiStatus::InvalidAsn, IrrStatus::InvalidAsn);
        let (_, open_out) = propagate(&t, &open, &invalid);
        let (_, strict_out) = propagate(&t, &strict, &invalid);
        prop_assert!(strict_out.reached() <= open_out.reached());
        // Under universal ROV an invalid announcement reaches only its origin.
        prop_assert_eq!(strict_out.reached(), 1);

        let valid = ann(origin, RpkiStatus::Valid, IrrStatus::Valid);
        let (_, open_v) = propagate(&t, &open, &valid);
        let (_, strict_v) = propagate(&t, &strict, &valid);
        prop_assert_eq!(open_v.reached(), strict_v.reached());
    }

    /// Interned collection returns exactly the same observations as the
    /// pre-pool representation: propagating each announcement separately
    /// and materializing owned vantage paths (the legacy
    /// `Vec<Vec<Asn>>` form) matches the pool-resolved paths.
    #[test]
    fn memoized_table_matches_unmemoized(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..12),
    ) {
        let n = t.len() as u32;
        let rpki_of = |k: u8| [RpkiStatus::Valid, RpkiStatus::InvalidAsn,
                               RpkiStatus::InvalidLength, RpkiStatus::NotFound][k as usize];
        let irr_of = |k: u8| [IrrStatus::Valid, IrrStatus::InvalidAsn,
                              IrrStatus::InvalidLength, IrrStatus::NotFound][k as usize];
        let anns: Vec<Announcement> = specs
            .iter()
            .enumerate()
            .map(|(i, (o, r, ir))| {
                let prefix = format!("10.{}.0.0/16", i % 250).parse().unwrap();
                Announcement::new(prefix, Asn((*o as u32 % n) + 1), rpki_of(*r), irr_of(*ir))
            })
            .collect();
        let policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let vantages: Vec<Asn> = vec![Asn(1), Asn(2)];
        let rib = TableCollector::new(&t, &policies, &vantages).plan().collect(&anns);
        for (i, a) in anns.iter().enumerate() {
            let (g, o) = propagate(&t, &policies, a);
            let expect: Vec<Vec<Asn>> = vantages
                .iter()
                .filter_map(|v| o.as_path(&g, *v))
                .collect();
            prop_assert_eq!(rib.materialize_paths(&rib.observations[i]), expect);
        }
    }

    /// Interned output — PathIds, pool contents, visibility — is
    /// bit-for-bit identical across serial and 2/4/8-thread collection.
    #[test]
    fn interned_collection_is_thread_invariant(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..12),
    ) {
        let n = t.len() as u32;
        let rpki_of = |k: u8| [RpkiStatus::Valid, RpkiStatus::InvalidAsn,
                               RpkiStatus::InvalidLength, RpkiStatus::NotFound][k as usize];
        let irr_of = |k: u8| [IrrStatus::Valid, IrrStatus::InvalidAsn,
                              IrrStatus::InvalidLength, IrrStatus::NotFound][k as usize];
        let anns: Vec<Announcement> = specs
            .iter()
            .enumerate()
            .map(|(i, (o, r, ir))| {
                let prefix = format!("10.{}.0.0/16", i % 250).parse().unwrap();
                Announcement::new(prefix, Asn((*o as u32 % n) + 1), rpki_of(*r), irr_of(*ir))
            })
            .collect();
        let policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let vantages: Vec<Asn> = vec![Asn(1), Asn(2)];
        let collector = TableCollector::new(&t, &policies, &vantages);
        let serial = collector.clone().parallel(ParallelConfig::serial()).plan().collect(&anns);
        for threads in [2usize, 4, 8] {
            let par = collector
                .clone()
                .parallel(ParallelConfig::with_threads(threads))
                .plan()
                .collect(&anns);
            prop_assert_eq!(&par.observations, &serial.observations, "threads={}", threads);
            prop_assert_eq!(par.pool(), serial.pool(), "threads={}", threads);
            prop_assert_eq!(par.visible_count(), serial.visible_count(), "threads={}", threads);
        }
    }

    /// The reverse per-vantage collection is bit-for-bit identical to
    /// the forward per-class collection — same interned PathIds, same
    /// pool, same visible set — over random topologies, heterogeneous
    /// per-node policies, random vantage sets (including empty sets and
    /// vantages absent from the graph), and 1/2/4/8 collection threads.
    /// Single-announcement inputs exercise the one-class degenerate
    /// case where the forward strategy does minimal work.
    #[test]
    fn reverse_collection_matches_forward(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..12),
        policy_seeds in prop::collection::vec((any::<u16>(), 0u16..32), 0..8),
        vantage_seeds in prop::collection::vec(any::<u16>(), 0..6),
    ) {
        let n = t.len() as u32;
        let rpki_of = |k: u8| [RpkiStatus::Valid, RpkiStatus::InvalidAsn,
                               RpkiStatus::InvalidLength, RpkiStatus::NotFound][k as usize];
        let irr_of = |k: u8| [IrrStatus::Valid, IrrStatus::InvalidAsn,
                              IrrStatus::InvalidLength, IrrStatus::NotFound][k as usize];
        let anns: Vec<Announcement> = specs
            .iter()
            .enumerate()
            .map(|(i, (o, r, ir))| {
                let prefix = format!("10.{}.0.0/16", i % 250).parse().unwrap();
                Announcement::new(prefix, Asn((*o as u32 % n) + 1), rpki_of(*r), irr_of(*ir))
            })
            .collect();
        // Heterogeneous policies: random per-node overrides over the
        // whole path-blind extension space (ROV, IRR customer/peer,
        // strict length, route server — 32 subsets), so acceptance
        // differs between transit ASes and the accept-class union
        // widens past the default.
        let mut policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let blind = [
            PolicyExtension::Rov,
            PolicyExtension::IrrCustomer,
            PolicyExtension::IrrPeer,
            PolicyExtension::IrrStrictLength,
            PolicyExtension::RouteServer,
        ];
        for (node, bits) in policy_seeds {
            let set: PolicySet = blind
                .iter()
                .enumerate()
                .filter(|(i, _)| bits & (1 << i) != 0)
                .map(|(_, e)| *e)
                .collect();
            policies.set(Asn((node as u32 % n) + 1), set);
        }
        // Vantages may repeat, may be empty, and may name ASes the
        // topology does not contain (n+1, n+2): all must behave the same
        // under both strategies.
        let vantages: Vec<Asn> = vantage_seeds
            .iter()
            .map(|s| Asn((*s as u32 % (n + 2)) + 1))
            .collect();
        let collector = TableCollector::new(&t, &policies, &vantages);
        let forward = collector
            .clone()
            .parallel(ParallelConfig::serial())
            .plan()
            .strategy(CollectionStrategy::Forward)
            .collect(&anns);
        for threads in [1usize, 2, 4, 8] {
            let reverse = collector
                .clone()
                .parallel(ParallelConfig::with_threads(threads))
                .plan()
                .strategy(CollectionStrategy::Reverse)
                .collect(&anns);
            prop_assert_eq!(&reverse.observations, &forward.observations, "threads={}", threads);
            prop_assert_eq!(reverse.pool(), forward.pool(), "threads={}", threads);
            prop_assert_eq!(reverse.visible_count(), forward.visible_count(), "threads={}", threads);
        }
        // Auto picks one of the two; either way the table is the same.
        let auto = collector.clone().plan().collect(&anns);
        prop_assert_eq!(&auto.observations, &forward.observations);
        prop_assert_eq!(auto.pool(), forward.pool());
    }

    /// Any policy mix containing a path-aware extension resolves to
    /// Forward collection — both under `Auto` and when `Reverse` is
    /// requested explicitly — and the collected table is identical to
    /// what the same path-blind base mix produces (path-aware verdicts
    /// are vacuous on valley-free-propagated routes).
    #[test]
    fn path_aware_mix_forces_forward(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..8),
        aware_seed in 0u8..3,
        node_seed in any::<u16>(),
    ) {
        let n = t.len() as u32;
        let rpki_of = |k: u8| [RpkiStatus::Valid, RpkiStatus::InvalidAsn,
                               RpkiStatus::InvalidLength, RpkiStatus::NotFound][k as usize];
        let irr_of = |k: u8| [IrrStatus::Valid, IrrStatus::InvalidAsn,
                              IrrStatus::InvalidLength, IrrStatus::NotFound][k as usize];
        let anns: Vec<Announcement> = specs
            .iter()
            .enumerate()
            .map(|(i, (o, r, ir))| {
                let prefix = format!("10.{}.0.0/16", i % 250).parse().unwrap();
                Announcement::new(prefix, Asn((*o as u32 % n) + 1), rpki_of(*r), irr_of(*ir))
            })
            .collect();
        let aware = [
            PolicyExtension::Aspa,
            PolicyExtension::OnlyToCustomers,
            PolicyExtension::PathEnd,
        ][aware_seed as usize];
        let base = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let mut policies = base.clone();
        // One node — possibly absent from the topology only if the
        // modulo wraps, which it cannot — deploys a path-aware defense.
        policies.set(
            Asn((node_seed as u32 % n) + 1),
            PolicySet::MANRS_ISP.with(aware),
        );
        prop_assert!(policies.active_union().reads_path());
        let vantages: Vec<Asn> = vec![Asn(1), Asn(2)];
        let collector = TableCollector::new(&t, &policies, &vantages);
        for strategy in [CollectionStrategy::Auto, CollectionStrategy::Reverse] {
            let plan = collector.clone().plan().strategy(strategy);
            prop_assert_eq!(
                plan.resolved_strategy(&anns),
                CollectionStrategy::Forward,
                "strategy {:?} must fall back to Forward under {:?}",
                strategy,
                aware
            );
        }
        // Path-aware verdicts never fire on valley-free routes: the
        // collected table matches the path-blind base policy table.
        let aware_rib = collector.plan().collect(&anns);
        let base_rib = TableCollector::new(&t, &base, &vantages).plan().collect(&anns);
        prop_assert_eq!(&aware_rib.observations, &base_rib.observations);
        prop_assert_eq!(aware_rib.pool(), base_rib.pool());
    }

    /// Thread-chunked batched validation returns exactly what the
    /// scalar validators return, at 1/2/4/8 threads, over random VRP
    /// sets (AS0 included), registries, and query batches.
    #[test]
    fn batched_pair_validation_is_thread_invariant(
        vrps in prop::collection::vec((reg_prefix(), 0u32..6, 0u8..=6), 0..25),
        routes in prop::collection::vec((reg_prefix(), 1u32..6), 0..25),
        queries in prop::collection::vec((reg_prefix(), 0u32..6), 0..40),
    ) {
        let set: VrpSet = vrps
            .iter()
            .map(|&(p, asn, extra)| Vrp::new(p, Asn(asn), (p.len() + extra).min(32)))
            .collect();
        let mut db = IrrDatabase::new("RADB", None);
        for &(prefix, origin) in &routes {
            db.add_route(RouteObject {
                prefix,
                origin: Asn(origin),
                descr: String::new(),
                mnt_by: "MAINT-PROP".into(),
                source: "RADB".into(),
                last_modified: Date::ymd(2022, 1, 1),
            });
        }
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        let rpki_index = CompiledVrpIndex::build(&set);
        let irr_index = CompiledIrrIndex::build(&reg);
        let pairs: Vec<(Prefix, Asn)> =
            queries.iter().map(|&(p, o)| (p, Asn(o))).collect();
        let want: Vec<(RpkiStatus, IrrStatus)> = pairs
            .iter()
            .map(|(p, o)| (validate_origin(&set, p, *o), validate_irr(&reg, p, *o)))
            .collect();
        for threads in [1usize, 2, 4, 8] {
            let cfg = ParallelConfig::with_threads(threads);
            let got = validate_pairs_batch(&cfg, &rpki_index, &irr_index, &pairs);
            prop_assert_eq!(&got, &want, "threads={}", threads);
        }
    }

    /// Reusing one dirty scratch across a sequence of announcements
    /// yields exactly what a fresh propagation computes, entry for
    /// entry — the zero-allocation path never leaks state between
    /// propagations.
    #[test]
    fn scratch_reuse_matches_fresh(
        t in arb_topology(),
        specs in prop::collection::vec((any::<u16>(), 0u8..4, 0u8..4), 1..10),
    ) {
        let n = t.len() as u32;
        let rpki_of = |k: u8| [RpkiStatus::Valid, RpkiStatus::InvalidAsn,
                               RpkiStatus::InvalidLength, RpkiStatus::NotFound][k as usize];
        let irr_of = |k: u8| [IrrStatus::Valid, IrrStatus::InvalidAsn,
                              IrrStatus::InvalidLength, IrrStatus::NotFound][k as usize];
        let policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let graph = DenseGraph::build(&t, &policies);
        let mut scratch = PropagationScratch::new();
        for (o, r, ir) in specs {
            // Include out-of-graph origins: the unknown-origin early
            // return must also fully clear previous state.
            let origin = (o as u32 % (n + 2)) + 1;
            let a = ann(origin, rpki_of(r), irr_of(ir));
            propagate_dense_into(&graph, &a, &mut scratch);
            let fresh = propagate_dense(&graph, &a);
            prop_assert_eq!(scratch.reached(), fresh.reached());
            for idx in 0..graph.len() {
                prop_assert_eq!(scratch.route_at(idx), fresh.route_at(idx));
            }
            for asn in t.asns() {
                prop_assert_eq!(scratch.as_path(&graph, asn), fresh.as_path(&graph, asn));
            }
        }
    }
}
