//! Reverse valley-free propagation: per-vantage backward traversal.
//!
//! Forward collection runs one full Gao–Rexford propagation per
//! (origin, filter-class) and then reads a handful of vantage rows out
//! of each run. When there are few vantages and many classes that is
//! almost all wasted work: the collected RIB only ever looks at the
//! routes *the vantages* select. This module inverts the computation:
//! for one vantage and one *acceptance class* (the projection of an
//! announcement that filters can observe — see [`AcceptClass`]), a
//! single backward traversal over the CSR graph yields, for **every**
//! reachable origin at once, exactly the route the vantage would have
//! selected under forward propagation — same provenance, same hops,
//! same AS path, bit for bit.
//!
//! ## Why the forward result is reconstructible backwards
//!
//! Forward propagation selects, at every AS, customer > peer > provider
//! routes, then shortest, then lowest neighbor ASN. The route the
//! vantage `v` ends up with decomposes into at most three segments:
//!
//! 1. **Customer segment.** If `v` has a customer route to origin `o`,
//!    its path is the lexicographically-least shortest chain of
//!    customer edges `v → … → o` whose every node except the terminal
//!    origin accepts the announcement from a customer. (Forward phase 1
//!    claims each provider with the lowest-ASN customer at the previous
//!    BFS level; unrolling that greedy choice from `v` is exactly a
//!    lexicographic-order level BFS *down* customer edges — see
//!    [`customer_tree`].)
//! 2. **Peer segment.** Failing that, `v` takes the best single peer
//!    hop: over all peers `u` with a customer route (or `u == o`), the
//!    offer `(hops(u) + 1, u)` with the smallest value wins. Backwards
//!    this is one merged multi-source BFS over the peers' customer
//!    cones, sources seeded in ascending index order so that each node
//!    is claimed by exactly the winning (distance, peer) pair — see
//!    [`peer_tree`].
//! 3. **Provider segment.** Failing both, the route climbs `v`'s
//!    *provider closure*: the set of ASes reachable from `v` by
//!    repeatedly ascending provider edges through nodes that accept
//!    provider routes. Each closure node `w` exports its own *selected*
//!    route (origin / customer / peer preferred over provider, even
//!    when longer!), so the closure is resolved per origin with a tiny
//!    Dijkstra whose seeds are the closure nodes' own selections and
//!    whose tie-break mirrors phase 3's bucket order — see
//!    [`provider_rows`].
//!
//! The acceptance class fixes, per node, three booleans (accepts from
//! customer / peer / provider), so one traversal serves every origin ×
//! every announcement in the class. [`crate::CollectionPlan`] stitches
//! the per-(vantage, class) views back into observations in the same
//! serial order forward collection uses, which keeps [`crate::PathId`]
//! assignment — and therefore the whole `CollectedRib` — identical.

use crate::announcement::Announcement;
use crate::policy::{PolicyExtension, PolicySet};
use crate::propagate::DenseGraph;
use manrs_irr::IrrStatus;
use manrs_net::Asn;
use manrs_topology::Relationship;

/// Sentinel for "unset" in the dense route rows.
const NONE: u32 = u32::MAX;

/// The projection of an announcement that the *active* path-blind
/// import filters can observe: whether ROV drops it and which IRR
/// bucket it falls in, each dimension collapsed when no active
/// extension reads it. Two announcements with equal [`AcceptClass`]
/// are accepted/rejected identically at every AS and every
/// relationship, so one reverse traversal serves both — regardless of
/// origin.
///
/// Classes are *widened by the active union*: `active` is the union of
/// every policy in the graph ([`DenseGraph::policy_union`]). An
/// all-open graph has one class; a graph with ROV but no IRR filtering
/// has two; strict-length deployments split the IRR dimension three
/// ways (at most six classes total). Merging announcements no active
/// filter can tell apart is bit-for-bit safe — their propagations are
/// identical — and keeps both strategies' work proportional to what
/// the deployed policies can actually distinguish.
///
/// Only meaningful when `active` is path-blind; path-aware extensions
/// make acceptance depend on route travel, which no per-announcement
/// class can capture — the collection layer forces forward collection
/// in that case.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct AcceptClass {
    rov_dropped: bool,
    /// IRR statuses collapse to the three buckets filters distinguish:
    /// invalid-ASN, invalid-length (under strict-length only), and
    /// everything else.
    irr: u8,
}

impl AcceptClass {
    pub(crate) fn of(a: &Announcement, active: PolicySet) -> Self {
        let rov_read = active.contains(PolicyExtension::Rov)
            || active.contains(PolicyExtension::RouteServer);
        let irr_read = active.contains(PolicyExtension::IrrCustomer)
            || active.contains(PolicyExtension::IrrPeer)
            || active.contains(PolicyExtension::RouteServer);
        let irr = if irr_read {
            match a.irr {
                IrrStatus::InvalidAsn => 1,
                IrrStatus::InvalidLength
                    if active.contains(PolicyExtension::IrrStrictLength) =>
                {
                    2
                }
                _ => 0,
            }
        } else {
            0
        };
        AcceptClass { rov_dropped: rov_read && a.rpki.dropped_by_rov(), irr }
    }
}

/// Per-node acceptance of one class, evaluated once per traversal.
/// Buffers are reused across traversals on the same worker.
#[derive(Default)]
struct Acceptance {
    customer: Vec<bool>,
    peer: Vec<bool>,
    provider: Vec<bool>,
}

impl Acceptance {
    fn evaluate_into(&mut self, graph: &DenseGraph, rep: &Announcement) {
        let n = graph.len();
        self.customer.clear();
        self.peer.clear();
        self.provider.clear();
        for u in 0..n {
            let pol = graph.policy_at(u);
            self.customer.push(pol.accepts(rep, Relationship::Customer));
            self.peer.push(pol.accepts(rep, Relationship::Peer));
            self.provider.push(pol.accepts(rep, Relationship::Provider));
        }
    }
}

/// Origin-indexed route rows of one provider-closure node.
#[derive(Default)]
struct NodeRows {
    /// Customer-route hops from the closure node down to each origin.
    cdist: Vec<u32>,
    /// Parent toward the closure node in the customer-route tree.
    cpred: Vec<u32>,
    /// Peer-route hops (winning peer's customer hops + 1).
    pdist: Vec<u32>,
    /// Parent in the merged peer-cone tree; peer sources have none.
    ppred: Vec<u32>,
    /// Provider-route hops (filled only for origins the closure
    /// Dijkstra actually resolves).
    rdist: Vec<u32>,
    /// Winning provider as a *closure position* (index into
    /// [`ReverseScratch::closure`]).
    rvia: Vec<u32>,
}

impl NodeRows {
    /// Resets every row to the unset sentinel at length `n`, keeping
    /// the allocations for reuse.
    fn reset(&mut self, n: usize) {
        for row in [
            &mut self.cdist,
            &mut self.cpred,
            &mut self.pdist,
            &mut self.ppred,
            &mut self.rdist,
            &mut self.rvia,
        ] {
            row.clear();
            row.resize(n, NONE);
        }
    }
}

/// One reverse traversal's state *and* its reusable buffers: for one
/// vantage and one acceptance class, the route the vantage selects
/// toward every origin in the graph. `closure[0]` is the vantage
/// itself. A worker keeps one scratch and calls
/// [`ReverseScratch::traverse`] per (vantage, class) work item, so
/// steady-state reverse collection allocates nothing — the same
/// discipline as the forward engine's `PropagationScratch`.
#[derive(Default)]
pub(crate) struct ReverseScratch {
    vantage: u32,
    /// The vantage's provider closure (dense indices, vantage first).
    closure: Vec<u32>,
    /// Dense index → closure position, reset per traversal (only the
    /// previous closure's entries are touched).
    pos_of: Vec<u32>,
    /// `rows[i]` belongs to `closure[i]`; the pool only ever grows.
    rows: Vec<NodeRows>,
    acc: Acceptance,
    // BFS work lists shared by the customer/peer trees.
    frontier: Vec<u32>,
    next: Vec<(u32, u32)>,
    sources: Vec<u32>,
    // Closure-resolution buffers (provider_rows).
    edges: Vec<Vec<u32>>,
    val: Vec<u32>,
    via: Vec<u32>,
    seeded: Vec<bool>,
    settled: Vec<bool>,
}

impl ReverseScratch {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    /// Runs one reverse traversal: vantage `vantage` (dense index),
    /// class represented by `rep`. Cost is roughly the size of the
    /// vantage's customer cone plus its peers' cones plus the closure
    /// resolution — independent of how many origins/classes the table
    /// contains. Previous traversal state is overwritten; buffers are
    /// reused.
    pub(crate) fn traverse(&mut self, graph: &DenseGraph, rep: &Announcement, vantage: usize) {
        let n = graph.len();
        self.vantage = vantage as u32;
        self.acc.evaluate_into(graph, rep);

        // Reset the dense position map by undoing only the previous
        // closure's entries (or rebuilding if the graph size changed).
        if self.pos_of.len() == n {
            for &x in &self.closure {
                self.pos_of[x as usize] = NONE;
            }
        } else {
            self.pos_of.clear();
            self.pos_of.resize(n, NONE);
        }

        // Provider closure: climb provider edges from the vantage
        // through nodes that accept provider routes. `pos_of` maps
        // dense index → closure position for the Dijkstra's edge
        // building.
        self.closure.clear();
        self.closure.push(vantage as u32);
        self.pos_of[vantage] = 0;
        let mut i = 0;
        while i < self.closure.len() {
            let x = self.closure[i] as usize;
            if self.acc.provider[x] {
                for &w in graph.providers_row(x) {
                    if self.pos_of[w as usize] == NONE {
                        self.pos_of[w as usize] = self.closure.len() as u32;
                        self.closure.push(w);
                    }
                }
            }
            i += 1;
        }

        // Per closure node: its customer-route tree and its merged
        // peer-cone tree. These double as the seeds of the closure
        // resolution and as path segments during reconstruction.
        let k = self.closure.len();
        if self.rows.len() < k {
            self.rows.resize_with(k, NodeRows::default);
        }
        for (j, &w) in self.closure.iter().enumerate() {
            self.rows[j].reset(n);
            customer_tree(
                graph,
                &self.acc,
                w as usize,
                &mut self.rows[j],
                &mut self.frontier,
                &mut self.next,
            );
            peer_tree(
                graph,
                &self.acc,
                w as usize,
                &mut self.rows[j],
                &mut self.frontier,
                &mut self.next,
                &mut self.sources,
            );
        }

        if k > 1 {
            provider_rows(
                graph,
                &self.acc,
                &self.closure,
                &self.pos_of,
                &mut self.rows[..k],
                &mut self.edges,
                &mut self.val,
                &mut self.via,
                &mut self.seeded,
                &mut self.settled,
            );
        }
    }
}

/// Runs one reverse traversal in a fresh scratch — convenience for
/// single-shot use and tests; batch callers hold a [`ReverseScratch`]
/// per worker and call [`ReverseScratch::traverse`] directly.
#[cfg(test)]
pub(crate) fn reverse_view(
    graph: &DenseGraph,
    rep: &Announcement,
    vantage: usize,
) -> ReverseScratch {
    let mut scratch = ReverseScratch::new();
    scratch.traverse(graph, rep, vantage);
    scratch
}

/// Lexicographic-order level BFS down customer edges from `w`.
///
/// Claims every origin `w` has a customer route to, recording hops and
/// the parent toward `w`. Per level, nodes are processed in the rank
/// order of their (unique, lexicographically-least) path from `w`; a
/// child is claimed by the first parent that reaches it, so the
/// recorded path is the lexicographically-least shortest admissible
/// chain — exactly the chain forward phase 1's "lowest customer ASN at
/// the previous level" greedy builds, unrolled from `w`.
///
/// A node that does not accept customer routes is still claimable (it
/// can be the terminal *origin* of a chain) but never expands.
fn customer_tree(
    graph: &DenseGraph,
    acc: &Acceptance,
    w: usize,
    rows: &mut NodeRows,
    frontier: &mut Vec<u32>,
    next: &mut Vec<(u32, u32)>,
) {
    if !acc.customer[w] {
        // Forward phase 1 installs nothing at `w` unless `w` accepts
        // from customers; without that no customer route exists (the
        // origin case is handled by the caller's origin check).
        return;
    }
    rows.cdist[w] = 0;
    frontier.clear();
    frontier.push(w as u32);
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        next.clear();
        for (rank, &x) in frontier.iter().enumerate() {
            if !acc.customer[x as usize] {
                continue; // absorbing: origin-only terminal
            }
            for &y in graph.customers_row(x as usize) {
                let yi = y as usize;
                if rows.cdist[yi] == NONE {
                    rows.cdist[yi] = depth;
                    rows.cpred[yi] = x;
                    next.push((rank as u32, y));
                }
            }
        }
        // (parent rank, child index) order *is* lexicographic path
        // order at the next level: same parent ⇒ lower index first,
        // different parents ⇒ parent order decides.
        next.sort_unstable();
        frontier.clear();
        frontier.extend(next.iter().map(|&(_, y)| y));
    }
}

/// Merged multi-source BFS over the customer cones of `w`'s peers.
///
/// Forward phase 2 lets every peer `u` of `w` that is routed after
/// phase 1 (i.e. has a customer route to the origin, or *is* the
/// origin) offer `(hops(u) + 1, u)`; `w` takes the minimum. Running all
/// sources in one BFS with sources seeded in ascending index order
/// reproduces that minimum per origin: a node is claimed at its
/// smallest (distance, source) pair, including origins that sit inside
/// several peers' cones, and the recorded parent chain is the winning
/// source's own lexicographically-least path.
fn peer_tree(
    graph: &DenseGraph,
    acc: &Acceptance,
    w: usize,
    rows: &mut NodeRows,
    frontier: &mut Vec<u32>,
    next: &mut Vec<(u32, u32)>,
    sources: &mut Vec<u32>,
) {
    if !acc.peer[w] {
        return;
    }
    sources.clear();
    sources.extend_from_slice(graph.peers_row(w));
    if sources.is_empty() {
        return;
    }
    sources.sort_unstable();
    sources.dedup();
    frontier.clear();
    for &u in sources.iter() {
        // A peer is claimable as its own origin even when it would not
        // accept the announcement (the origin installs unconditionally).
        rows.pdist[u as usize] = 1;
        rows.ppred[u as usize] = NONE;
        frontier.push(u);
    }
    let mut depth = 1u32;
    while !frontier.is_empty() {
        depth += 1;
        next.clear();
        for (rank, &x) in frontier.iter().enumerate() {
            if !acc.customer[x as usize] {
                continue; // source (or cone node) without a customer route
            }
            for &y in graph.customers_row(x as usize) {
                let yi = y as usize;
                if rows.pdist[yi] == NONE {
                    rows.pdist[yi] = depth;
                    rows.ppred[yi] = x;
                    next.push((rank as u32, y));
                }
            }
        }
        next.sort_unstable();
        frontier.clear();
        frontier.extend(next.iter().map(|&(_, y)| y));
    }
}

/// Resolves provider routes over the closure, one origin at a time.
///
/// Every closure node exports its own *selected* route — origin,
/// customer, or peer routes are preferred over provider routes even
/// when longer — so seeds come from the nodes' own rows and unseeded
/// nodes relax along provider→customer edges with the forward tie-break
/// (fewest hops, then lowest provider ASN). Origins for which the
/// vantage itself is seeded never consult a provider route and are
/// skipped outright.
#[allow(clippy::too_many_arguments)]
fn provider_rows(
    graph: &DenseGraph,
    acc: &Acceptance,
    closure: &[u32],
    pos_of: &[u32],
    rows: &mut [NodeRows],
    edges: &mut Vec<Vec<u32>>,
    val: &mut Vec<u32>,
    via: &mut Vec<u32>,
    seeded: &mut Vec<bool>,
    settled: &mut Vec<bool>,
) {
    let k = closure.len();
    let n = graph.len();
    // Closure-local provider → customer edges, grouped by provider
    // position: when a provider settles it relaxes its closure
    // customers. A node only receives if it accepts provider routes;
    // its providers are guaranteed to be in the closure because
    // closure expansion ascends through exactly those nodes.
    if edges.len() < k {
        edges.resize_with(k, Vec::new);
    }
    for e in edges[..k].iter_mut() {
        e.clear();
    }
    for (j, &xj) in closure.iter().enumerate() {
        if acc.provider[xj as usize] {
            for &w in graph.providers_row(xj as usize) {
                edges[pos_of[w as usize] as usize].push(j as u32);
            }
        }
    }

    val.clear();
    val.resize(k, NONE);
    via.clear();
    via.resize(k, NONE);
    seeded.clear();
    seeded.resize(k, false);
    settled.clear();
    settled.resize(k, false);
    for o in 0..n {
        let mut any = false;
        for j in 0..k {
            let wj = closure[j] as usize;
            let seed = if wj == o {
                Some(0)
            } else if rows[j].cdist[o] != NONE {
                Some(rows[j].cdist[o])
            } else if rows[j].pdist[o] != NONE {
                Some(rows[j].pdist[o])
            } else {
                None
            };
            seeded[j] = seed.is_some();
            val[j] = seed.unwrap_or(NONE);
            via[j] = NONE;
            settled[j] = false;
            any |= seed.is_some();
        }
        if seeded[0] || !any {
            continue;
        }
        // Dijkstra with linear-scan extraction: closures are small
        // (a vantage's provider ancestry), and equal-hop nodes cannot
        // relax each other, so settle order among ties is immaterial.
        loop {
            let mut best = NONE;
            let mut bj = k;
            for j in 0..k {
                if !settled[j] && val[j] < best {
                    best = val[j];
                    bj = j;
                }
            }
            if bj == k {
                break;
            }
            settled[bj] = true;
            let cand = val[bj] + 1;
            for &jc in &edges[bj] {
                let jc = jc as usize;
                if seeded[jc] || settled[jc] {
                    continue;
                }
                // (hops, provider ASN) tie-break; closure positions are
                // discovery order, so compare dense indices.
                let better = cand < val[jc]
                    || (cand == val[jc] && closure[bj] < closure[via[jc] as usize]);
                if better {
                    val[jc] = cand;
                    via[jc] = bj as u32;
                }
            }
        }
        for j in 0..k {
            if !seeded[j] && val[j] != NONE {
                rows[j].rdist[o] = val[j];
                rows[j].rvia[o] = via[j];
            }
        }
    }
}

impl ReverseScratch {
    /// The route's AS path from the vantage to `origin` (dense index),
    /// or `None` if the vantage never hears the announcement — exactly
    /// [`crate::PropagationScratch::as_path_at`] of the forward run.
    /// Reads the state of the latest [`ReverseScratch::traverse`].
    pub(crate) fn path_to(&self, graph: &DenseGraph, origin: usize) -> Option<Vec<Asn>> {
        let v = self.vantage as usize;
        if origin == v {
            return Some(vec![graph.asn_at(v)]);
        }
        let r0 = &self.rows[0];
        if r0.cdist[origin] != NONE {
            let mut path = walk_pred(graph, &r0.cpred, origin);
            path.reverse();
            return Some(path);
        }
        if r0.pdist[origin] != NONE {
            let mut path = walk_pred(graph, &r0.ppred, origin);
            path.push(graph.asn_at(v));
            path.reverse();
            return Some(path);
        }
        if r0.rdist[origin] != NONE {
            let mut path = vec![graph.asn_at(v)];
            let mut pos = r0.rvia[origin] as usize;
            loop {
                let w = self.closure[pos] as usize;
                if w == origin {
                    path.push(graph.asn_at(w));
                    break;
                }
                let rw = &self.rows[pos];
                if rw.cdist[origin] != NONE {
                    // The chain ends in w's own customer route; the
                    // pred walk yields [origin .. w], appended reversed.
                    let seg = walk_pred(graph, &rw.cpred, origin);
                    path.extend(seg.into_iter().rev());
                    break;
                }
                if rw.pdist[origin] != NONE {
                    path.push(graph.asn_at(w));
                    let seg = walk_pred(graph, &rw.ppred, origin);
                    path.extend(seg.into_iter().rev());
                    break;
                }
                // w itself selected a provider route: keep climbing.
                path.push(graph.asn_at(w));
                pos = rw.rvia[origin] as usize;
            }
            return Some(path);
        }
        None
    }
}

/// Collects `[origin, pred(origin), …, root]` by chasing a predecessor
/// row until the unset sentinel (the tree root, or a peer source).
fn walk_pred(graph: &DenseGraph, pred: &[u32], origin: usize) -> Vec<Asn> {
    let mut path = Vec::new();
    let mut cur = origin;
    loop {
        path.push(graph.asn_at(cur));
        match pred[cur] {
            NONE => return path,
            p => cur = p as usize,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyTable;
    use crate::propagate::{propagate_dense, DenseGraph};
    use crate::testutil::{topo, wide_topo};
    use manrs_irr::IrrStatus;
    use manrs_rpki::RpkiStatus;
    use manrs_topology::AsTopology;

    fn ann_with(origin: u32, rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
        Announcement::new("10.0.0.0/16".parse().unwrap(), Asn(origin), rpki, irr)
    }

    /// Reverse view of every vantage must reproduce the forward path for
    /// every origin, for the given policies and announcement statuses.
    fn assert_matches_forward(
        t: &AsTopology,
        policies: &PolicyTable,
        rpki: RpkiStatus,
        irr: IrrStatus,
    ) {
        let graph = DenseGraph::build(t, policies);
        let n = graph.len();
        let rep = ann_with(1, rpki, irr);
        for vantage in 0..n {
            let view = reverse_view(&graph, &rep, vantage);
            for origin in 0..n {
                let a = ann_with(graph.asn_at(origin).0, rpki, irr);
                let fwd = propagate_dense(&graph, &a);
                assert_eq!(
                    view.path_to(&graph, origin),
                    fwd.as_path_at(&graph, vantage),
                    "vantage {:?} origin {:?}",
                    graph.asn_at(vantage),
                    graph.asn_at(origin),
                );
            }
        }
    }

    #[test]
    fn matches_forward_on_small_topologies() {
        let cases: &[AsTopology] = &[
            topo(3, &[(1, 2), (2, 3)], &[]),
            topo(4, &[(1, 3), (2, 4)], &[(1, 2)]),
            topo(4, &[(2, 4), (3, 4)], &[(2, 3)]),
            topo(5, &[(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)], &[(2, 3)]),
            topo(5, &[(2, 1), (4, 3), (3, 1), (5, 2), (5, 4)], &[]),
            topo(3, &[], &[(1, 2), (2, 3)]),
        ];
        for t in cases {
            assert_matches_forward(t, &PolicyTable::default(), RpkiStatus::NotFound, IrrStatus::NotFound);
        }
    }

    #[test]
    fn matches_forward_under_filtering() {
        let t = wide_topo(60);
        let mut policies = PolicyTable::default();
        for asn in (2u32..=60).step_by(5) {
            policies.set(Asn(asn), PolicySet::OPEN.with(PolicyExtension::Rov));
        }
        for asn in (3u32..=60).step_by(7) {
            policies.set(Asn(asn), PolicySet::OPEN.with(PolicyExtension::IrrCustomer));
        }
        for asn in (4u32..=60).step_by(11) {
            policies.set(
                Asn(asn),
                PolicySet::MANRS_CDN.with(PolicyExtension::IrrStrictLength),
            );
        }
        for asn in (6u32..=60).step_by(13) {
            policies.set(Asn(asn), PolicySet::ROUTE_SERVER);
        }
        for (rpki, irr) in [
            (RpkiStatus::Valid, IrrStatus::Valid),
            (RpkiStatus::InvalidAsn, IrrStatus::Valid),
            (RpkiStatus::NotFound, IrrStatus::InvalidAsn),
            (RpkiStatus::InvalidLength, IrrStatus::InvalidLength),
        ] {
            assert_matches_forward(&t, &policies, rpki, irr);
        }
    }

    #[test]
    fn accept_class_collapses_neutral_irr() {
        let full = PolicySet::MANRS_CDN.with(PolicyExtension::IrrStrictLength);
        let a = ann_with(1, RpkiStatus::Valid, IrrStatus::Valid);
        let b = ann_with(2, RpkiStatus::NotFound, IrrStatus::NotFound);
        assert_eq!(AcceptClass::of(&a, full), AcceptClass::of(&b, full));
        let c = ann_with(1, RpkiStatus::Valid, IrrStatus::InvalidAsn);
        assert_ne!(AcceptClass::of(&a, full), AcceptClass::of(&c, full));
        let d = ann_with(1, RpkiStatus::InvalidAsn, IrrStatus::Valid);
        assert_ne!(AcceptClass::of(&a, full), AcceptClass::of(&d, full));
    }

    #[test]
    fn accept_class_widens_with_the_active_union() {
        let a = ann_with(1, RpkiStatus::Valid, IrrStatus::Valid);
        let rov_drop = ann_with(1, RpkiStatus::InvalidAsn, IrrStatus::Valid);
        let irr_bad = ann_with(1, RpkiStatus::Valid, IrrStatus::InvalidAsn);
        let irr_len = ann_with(1, RpkiStatus::Valid, IrrStatus::InvalidLength);

        // Nothing active: every announcement shares one class.
        let open = PolicySet::OPEN;
        assert_eq!(AcceptClass::of(&a, open), AcceptClass::of(&rov_drop, open));
        assert_eq!(AcceptClass::of(&a, open), AcceptClass::of(&irr_bad, open));

        // ROV alone reads only the RPKI dimension.
        let rov = PolicySet::OPEN.with(PolicyExtension::Rov);
        assert_ne!(AcceptClass::of(&a, rov), AcceptClass::of(&rov_drop, rov));
        assert_eq!(AcceptClass::of(&a, rov), AcceptClass::of(&irr_bad, rov));

        // IRR filtering reads Invalid-ASN, but Invalid-length only
        // splits off under the strict-length modifier.
        let isp = PolicySet::MANRS_ISP;
        assert_ne!(AcceptClass::of(&a, isp), AcceptClass::of(&irr_bad, isp));
        assert_eq!(AcceptClass::of(&a, isp), AcceptClass::of(&irr_len, isp));
        let strict = isp.with(PolicyExtension::IrrStrictLength);
        assert_ne!(AcceptClass::of(&a, strict), AcceptClass::of(&irr_len, strict));

        // A route server reads both dimensions on its own.
        let rs = PolicySet::ROUTE_SERVER;
        assert_ne!(AcceptClass::of(&a, rs), AcceptClass::of(&rov_drop, rs));
        assert_ne!(AcceptClass::of(&a, rs), AcceptClass::of(&irr_bad, rs));
    }
}
