//! Origin-hijack construction.
//!
//! A prefix origin hijack (§2.1) is an announcement of someone else's
//! prefix with the attacker as origin. This module builds the
//! announcement the attacker injects, in the two classic flavours:
//! exact-prefix (competes on path length) and more-specific (wins by
//! longest-prefix match wherever it propagates — and, when the victim
//! registered a ROA without slack, is RPKI Invalid-length for everyone
//! running ROV).

use crate::announcement::Announcement;
use manrs_irr::{validate_irr, IrrRegistry};
use manrs_net::{Asn, Prefix};
use manrs_rpki::{validate_origin, VrpSet};
use serde::{Deserialize, Serialize};

/// The shape of the forged announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HijackKind {
    /// Announce the victim's prefix as-is.
    ExactPrefix,
    /// Announce a one-bit-longer subprefix (the low half).
    MoreSpecific,
}

/// An origin hijack scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hijack {
    /// The prefix under attack (as announced by the victim).
    pub victim_prefix: Prefix,
    /// The attacking origin AS.
    pub attacker: Asn,
    /// Exact or more-specific.
    pub kind: HijackKind,
}

impl Hijack {
    /// The prefix the attacker announces.
    pub fn forged_prefix(&self) -> Prefix {
        match self.kind {
            HijackKind::ExactPrefix => self.victim_prefix,
            HijackKind::MoreSpecific => match self.victim_prefix {
                Prefix::V4(p) => p
                    .children()
                    .map(|(lo, _)| Prefix::V4(lo))
                    .unwrap_or(self.victim_prefix),
                Prefix::V6(p) => p
                    .children()
                    .map(|(lo, _)| Prefix::V6(lo))
                    .unwrap_or(self.victim_prefix),
            },
        }
    }

    /// Builds the forged announcement, validating it against the real
    /// registries exactly as any other announcement would be.
    pub fn announcement(&self, vrps: &VrpSet, irr: &IrrRegistry) -> Announcement {
        let prefix = self.forged_prefix();
        Announcement::new(
            prefix,
            self.attacker,
            validate_origin(vrps, &prefix, self.attacker),
            validate_irr(irr, &prefix, self.attacker),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_irr::IrrDatabase;
    use manrs_net::Date;
    use manrs_rpki::{RpkiStatus, Vrp};

    fn vrps() -> VrpSet {
        // Victim AS1 registered 10.0.0.0/16 maxlen 16.
        [Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(1), 16)]
            .into_iter()
            .collect()
    }

    fn irr() -> IrrRegistry {
        let mut db = IrrDatabase::new("RADB", None);
        db.add_route(manrs_irr::RouteObject {
            prefix: "10.0.0.0/16".parse().unwrap(),
            origin: Asn(1),
            descr: String::new(),
            mnt_by: "M".into(),
            source: "RADB".into(),
            last_modified: Date::ymd(2022, 1, 1),
        });
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        reg
    }

    #[test]
    fn exact_hijack_is_rpki_invalid_asn() {
        let h = Hijack {
            victim_prefix: "10.0.0.0/16".parse().unwrap(),
            attacker: Asn(666),
            kind: HijackKind::ExactPrefix,
        };
        let a = h.announcement(&vrps(), &irr());
        assert_eq!(a.prefix, h.victim_prefix);
        assert_eq!(a.rpki, RpkiStatus::InvalidAsn);
        assert!(a.is_manrs_unconformant());
    }

    #[test]
    fn more_specific_hijack_forges_subprefix() {
        let h = Hijack {
            victim_prefix: "10.0.0.0/16".parse().unwrap(),
            attacker: Asn(666),
            kind: HijackKind::MoreSpecific,
        };
        let a = h.announcement(&vrps(), &irr());
        assert_eq!(a.prefix, "10.0.0.0/17".parse::<Prefix>().unwrap());
        assert_eq!(a.rpki, RpkiStatus::InvalidAsn);
    }

    #[test]
    fn self_deaggregation_is_invalid_length_not_asn() {
        // The victim de-aggregating its own ROA-covered prefix beyond
        // maxLength: Invalid length, the misconfiguration case.
        let h = Hijack {
            victim_prefix: "10.0.0.0/16".parse().unwrap(),
            attacker: Asn(1),
            kind: HijackKind::MoreSpecific,
        };
        let a = h.announcement(&vrps(), &irr());
        assert_eq!(a.rpki, RpkiStatus::InvalidLength);
        // IRR: same origin, more specific than the route object.
        assert_eq!(a.irr, manrs_irr::IrrStatus::InvalidLength);
        assert!(a.is_manrs_conformant());
    }

    #[test]
    fn host_route_cannot_deaggregate() {
        let h = Hijack {
            victim_prefix: "10.0.0.1/32".parse().unwrap(),
            attacker: Asn(666),
            kind: HijackKind::MoreSpecific,
        };
        assert_eq!(h.forged_prefix(), h.victim_prefix);
    }
}
