//! Interned, deduplicated AS-path storage.
//!
//! Collected tables repeat the same AS paths over and over: every
//! announcement in one (origin, filter-class) equivalence class is seen
//! over the *identical* vantage paths, and across classes the paths
//! still share long tails. Storing each observation's paths as owned
//! `Vec<Vec<Asn>>` therefore multiplies the dominant allocation of the
//! whole pipeline. A [`PathPool`] stores every distinct path exactly
//! once in one flat arena — observations hold cheap [`PathId`] handles,
//! and readers borrow `&[Asn]` slices with zero copying.
//!
//! Layout:
//!
//! ```text
//! elems:   [a, b, c,   a, d,   b, c]      one flat Vec<Asn>
//! offsets: [0,       3,      5,      7]   path i = elems[offsets[i]..offsets[i+1]]
//! ```
//!
//! Alongside the ASN arena the pool keeps a parallel *dense* rendering:
//! every distinct ASN appearing anywhere in the pool gets a small
//! `u32` id (first-appearance order), and `dense[i]` is the id of
//! `elems[i]`. Counting passes (AS hegemony) index a flat counter with
//! these ids instead of hashing ASNs — see
//! `manrs_ihr::HegemonyCounter`.
//!
//! ## `PathId` lifetime rules
//!
//! A [`PathId`] is an index into the pool that minted it. It stays
//! valid for the life of that pool (paths are never removed), across
//! serialization round trips (ids are positional and the arena is
//! serialized in order), and is meaningless against any other pool.
//! Interning is append-only and deterministic: the same sequence of
//! [`PathInterner::intern`] calls yields the same ids and the same
//! arena, regardless of thread count upstream.

use manrs_net::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Handle to one interned AS path in a [`PathPool`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct PathId(u32);

impl PathId {
    /// The pool-positional index of this path.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A deduplicating arena of AS paths: one flat element vector plus an
/// offset table. See the module docs for layout and lifetime rules.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
#[serde(from = "PathPoolSerde")]
pub struct PathPool {
    /// Flat ASN storage; path `i` is `elems[offsets[i]..offsets[i+1]]`.
    elems: Vec<Asn>,
    /// `len() + 1` offsets into `elems` (empty pool: empty vec).
    offsets: Vec<u32>,
    /// Dense ASN id per element, parallel to `elems` (derived; rebuilt
    /// on deserialization, never serialized).
    #[serde(skip)]
    dense: Vec<u32>,
    /// Dense id → ASN, in first-appearance order (derived).
    #[serde(skip)]
    universe: Vec<Asn>,
}

/// Serialized form: just the arena. The dense rendering is derived data
/// and is rebuilt when a pool is read back.
#[derive(Deserialize)]
struct PathPoolSerde {
    elems: Vec<Asn>,
    offsets: Vec<u32>,
}

impl From<PathPoolSerde> for PathPool {
    fn from(raw: PathPoolSerde) -> Self {
        let mut pool = PathPool {
            elems: raw.elems,
            offsets: raw.offsets,
            dense: Vec::new(),
            universe: Vec::new(),
        };
        pool.rebuild_dense();
        pool
    }
}

impl PathPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of interned paths.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` if no path has been interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total path elements stored (after dedup).
    pub fn total_elements(&self) -> usize {
        self.elems.len()
    }

    /// The AS path behind `id`, zero-copy.
    pub fn path(&self, id: PathId) -> &[Asn] {
        let i = id.index();
        &self.elems[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// The dense-id rendering of the path behind `id` (indexes into
    /// [`PathPool::universe`]), zero-copy.
    pub fn dense_path(&self, id: PathId) -> &[u32] {
        let i = id.index();
        &self.dense[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Every distinct ASN appearing in the pool, indexed by dense id.
    pub fn universe(&self) -> &[Asn] {
        &self.universe
    }

    /// Iterates the ids of all interned paths in positional order —
    /// the way to walk the pool per distinct path (rather than per
    /// observation) without constructing ids by hand.
    pub fn ids(&self) -> impl Iterator<Item = PathId> {
        (0..self.len() as u32).map(PathId)
    }

    /// Iterates all interned paths in id order.
    pub fn iter(&self) -> impl Iterator<Item = &[Asn]> + '_ {
        (0..self.len()).map(|i| self.path(PathId(i as u32)))
    }

    /// Appends a path without dedup checking (callers go through
    /// [`PathInterner`], which dedups first).
    fn push(&mut self, path: &[Asn], asn_index: &mut HashMap<Asn, u32>) -> PathId {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        let id = PathId(self.len() as u32);
        self.elems.extend_from_slice(path);
        for &asn in path {
            let next = self.universe.len() as u32;
            let dense = *asn_index.entry(asn).or_insert_with(|| {
                self.universe.push(asn);
                next
            });
            self.dense.push(dense);
        }
        self.offsets.push(self.elems.len() as u32);
        id
    }

    /// Recomputes `dense`/`universe` from the arena (used after
    /// deserialization).
    fn rebuild_dense(&mut self) {
        self.dense.clear();
        self.universe.clear();
        let mut index: HashMap<Asn, u32> = HashMap::new();
        self.dense.reserve(self.elems.len());
        for &asn in &self.elems {
            let next = self.universe.len() as u32;
            let dense = *index.entry(asn).or_insert_with(|| {
                self.universe.push(asn);
                next
            });
            self.dense.push(dense);
        }
    }
}

/// Builds a [`PathPool`] by interning paths one at a time, deduping
/// against everything already stored. The dedup index lives here, not in
/// the pool, so a finished pool carries no hash tables.
#[derive(Debug, Default)]
pub struct PathInterner {
    pool: PathPool,
    /// path-hash → candidate ids (collisions resolved by slice compare).
    dedup: HashMap<u64, Vec<PathId>>,
    /// ASN → dense id, shared with the pool's universe.
    asn_index: HashMap<Asn, u32>,
}

impl PathInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resumes interning into an existing pool (rebuilds the dedup
    /// index from the pool's contents).
    pub fn from_pool(pool: PathPool) -> Self {
        let mut interner = PathInterner {
            dedup: HashMap::with_capacity(pool.len()),
            asn_index: pool
                .universe
                .iter()
                .enumerate()
                .map(|(i, &asn)| (asn, i as u32))
                .collect(),
            pool,
        };
        for i in 0..interner.pool.len() {
            let id = PathId(i as u32);
            let h = hash_path(interner.pool.path(id));
            interner.dedup.entry(h).or_default().push(id);
        }
        interner
    }

    /// Interns `path`, returning the existing id when an identical path
    /// is already stored.
    pub fn intern(&mut self, path: &[Asn]) -> PathId {
        let h = hash_path(path);
        if let Some(ids) = self.dedup.get(&h) {
            for &id in ids {
                if self.pool.path(id) == path {
                    return id;
                }
            }
        }
        let id = self.pool.push(path, &mut self.asn_index);
        self.dedup.entry(h).or_default().push(id);
        id
    }

    /// The pool built so far (read-only).
    pub fn pool(&self) -> &PathPool {
        &self.pool
    }

    /// Finishes interning, dropping the dedup index.
    pub fn into_pool(self) -> PathPool {
        self.pool
    }
}

fn hash_path(path: &[Asn]) -> u64 {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    path.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn asns(raw: &[u32]) -> Vec<Asn> {
        raw.iter().map(|&a| Asn(a)).collect()
    }

    #[test]
    fn intern_dedups_identical_paths() {
        let mut interner = PathInterner::new();
        let a = interner.intern(&asns(&[1, 2, 3]));
        let b = interner.intern(&asns(&[4, 5]));
        let c = interner.intern(&asns(&[1, 2, 3]));
        assert_eq!(a, c);
        assert_ne!(a, b);
        let pool = interner.into_pool();
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.path(a), asns(&[1, 2, 3]).as_slice());
        assert_eq!(pool.path(b), asns(&[4, 5]).as_slice());
        assert_eq!(pool.total_elements(), 5);
    }

    #[test]
    fn dense_rendering_tracks_universe() {
        let mut interner = PathInterner::new();
        let a = interner.intern(&asns(&[10, 20, 30]));
        let b = interner.intern(&asns(&[20, 40]));
        let pool = interner.into_pool();
        assert_eq!(pool.universe(), asns(&[10, 20, 30, 40]).as_slice());
        assert_eq!(pool.dense_path(a), &[0, 1, 2]);
        assert_eq!(pool.dense_path(b), &[1, 3]);
    }

    #[test]
    fn empty_and_zero_length_paths() {
        let mut interner = PathInterner::new();
        assert!(interner.pool().is_empty());
        let e = interner.intern(&[]);
        let e2 = interner.intern(&[]);
        assert_eq!(e, e2);
        let pool = interner.into_pool();
        assert_eq!(pool.len(), 1);
        assert!(pool.path(e).is_empty());
    }

    #[test]
    fn serde_round_trip_rebuilds_dense() {
        // Offline builds patch serde_json with a no-op stub; skip when
        // round-tripping plainly doesn't work.
        if !serde_json::to_string(&7u32).map(|s| s == "7").unwrap_or(false) {
            return;
        }
        let mut interner = PathInterner::new();
        let ids: Vec<PathId> = [&[1u32, 2, 3][..], &[2, 9], &[1, 2, 3], &[7]]
            .iter()
            .map(|p| interner.intern(&asns(p)))
            .collect();
        let pool = interner.into_pool();
        let json = serde_json::to_string(&pool).expect("serialize");
        let back: PathPool = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back, pool);
        for &id in &ids {
            assert_eq!(back.path(id), pool.path(id));
            assert_eq!(back.dense_path(id), pool.dense_path(id));
        }
        assert_eq!(back.universe(), pool.universe());
    }

    #[test]
    fn from_pool_resumes_dedup() {
        let mut interner = PathInterner::new();
        let a = interner.intern(&asns(&[1, 2]));
        let pool = interner.into_pool();
        let mut resumed = PathInterner::from_pool(pool);
        assert_eq!(resumed.intern(&asns(&[1, 2])), a);
        let b = resumed.intern(&asns(&[3]));
        assert_eq!(b.index(), 1);
    }
}
