//! Announcements: validated (prefix, origin) pairs.

use manrs_irr::IrrStatus;
use manrs_net::{Asn, Prefix};
use manrs_rpki::RpkiStatus;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One (prefix, origin) pair entering the routing system, annotated with
/// the registry statuses every filtering decision consults.
///
/// The statuses are carried on the announcement (rather than recomputed
/// at each hop) because they are global facts: RFC 6811 validation of a
/// route yields the same answer at every AS evaluating the same VRP set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Announcement {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS.
    pub origin: Asn,
    /// RPKI validation status against the current VRP set.
    pub rpki: RpkiStatus,
    /// IRR validity against the registry collection.
    pub irr: IrrStatus,
}

impl Announcement {
    /// Creates an announcement.
    pub fn new(prefix: Prefix, origin: Asn, rpki: RpkiStatus, irr: IrrStatus) -> Self {
        Announcement { prefix, origin, rpki, irr }
    }

    /// MANRS conformance of the prefix-origin pair (§6.4): conformant iff
    /// RPKI Valid, or IRR Valid / Invalid-length.
    pub fn is_manrs_conformant(&self) -> bool {
        self.rpki == RpkiStatus::Valid
            || matches!(self.irr, IrrStatus::Valid | IrrStatus::InvalidLength)
    }

    /// MANRS *un*conformance (§6.4): RPKI Invalid, or RPKI NotFound with
    /// IRR Invalid. Note this is not the complement of
    /// [`Self::is_manrs_conformant`]: (RPKI NotFound, IRR NotFound) is
    /// neither conformant nor unconformant.
    pub fn is_manrs_unconformant(&self) -> bool {
        self.rpki.is_invalid()
            || (self.rpki == RpkiStatus::NotFound && self.irr == IrrStatus::InvalidAsn)
    }
}

impl fmt::Display for Announcement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} from {} [rpki: {}, irr: {}]",
            self.prefix, self.origin, self.rpki, self.irr
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ann(rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
        Announcement::new("10.0.0.0/16".parse().unwrap(), Asn(1), rpki, irr)
    }

    #[test]
    fn conformance_matrix() {
        use IrrStatus as I;
        use RpkiStatus as R;
        // RPKI Valid is always conformant.
        assert!(ann(R::Valid, I::NotFound).is_manrs_conformant());
        assert!(ann(R::Valid, I::InvalidAsn).is_manrs_conformant());
        // IRR Valid / InvalidLength are conformant regardless of RPKI
        // NotFound.
        assert!(ann(R::NotFound, I::Valid).is_manrs_conformant());
        assert!(ann(R::NotFound, I::InvalidLength).is_manrs_conformant());
        // RPKI Invalid is unconformant even with IRR Valid? The paper's
        // definition: unconformant if RPKI Invalid, conformant if IRR
        // Valid — an announcement can be both (inconsistent registries);
        // both predicates report their side.
        assert!(ann(R::InvalidAsn, I::Valid).is_manrs_unconformant());
        assert!(ann(R::InvalidAsn, I::Valid).is_manrs_conformant());
        // The clean unconformant case.
        assert!(ann(R::NotFound, I::InvalidAsn).is_manrs_unconformant());
        assert!(!ann(R::NotFound, I::InvalidAsn).is_manrs_conformant());
        // The grey zone: nothing registered anywhere.
        let grey = ann(R::NotFound, I::NotFound);
        assert!(!grey.is_manrs_conformant());
        assert!(!grey.is_manrs_unconformant());
    }

    #[test]
    fn display() {
        let a = ann(RpkiStatus::Valid, IrrStatus::NotFound);
        assert_eq!(a.to_string(), "10.0.0.0/16 from AS1 [rpki: Valid, irr: NotFound]");
    }
}
