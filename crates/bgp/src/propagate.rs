//! Deterministic Gao–Rexford route propagation.
//!
//! Routes propagate under the standard valley-free economic model:
//!
//! 1. **Customer routes climb.** Starting at the origin, announcements
//!    propagate from customers to providers. An AS with a customer route
//!    exports it to everyone (providers, peers, customers).
//! 2. **Peer routes cross once.** An AS with a customer route (or the
//!    origin) exports to its peers; a peer route is never re-exported to
//!    peers or providers.
//! 3. **Provider routes descend.** Any routed AS exports to its
//!    customers; routes learned from providers or peers go only to
//!    customers.
//!
//! Route preference at each AS: customer > peer > provider; then shorter
//! AS path; then lowest neighbor ASN (a deterministic stand-in for real
//! tie-breaks). Import filtering ([`crate::FilteringPolicy`]) is applied
//! before installation, so a filtered route is neither used nor
//! re-exported — exactly the behaviour the paper's §9 measures from
//! outside.

use crate::announcement::Announcement;
use crate::policy::{PolicySet, PolicyTable, RouteAttrs};
use manrs_net::Asn;
use manrs_topology::{AsTopology, Relationship};
use serde::{Deserialize, Serialize};
use std::mem;

/// Sentinel for "no upstream": the origin's `via` pointer.
const NO_VIA: u32 = u32::MAX;

/// How an AS obtained its best route.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Provenance {
    /// The AS originates the prefix itself.
    Origin,
    /// Learned from the given customer.
    Customer(Asn),
    /// Learned from the given peer.
    Peer(Asn),
    /// Learned from the given provider.
    Provider(Asn),
}

impl Provenance {
    /// The neighbor the route was learned from, if any.
    pub fn learned_from(&self) -> Option<Asn> {
        match self {
            Provenance::Origin => None,
            Provenance::Customer(a) | Provenance::Peer(a) | Provenance::Provider(a) => Some(*a),
        }
    }

    /// The relationship of the sender from the receiver's perspective.
    pub fn relationship(&self) -> Option<Relationship> {
        match self {
            Provenance::Origin => None,
            Provenance::Customer(_) => Some(Relationship::Customer),
            Provenance::Peer(_) => Some(Relationship::Peer),
            Provenance::Provider(_) => Some(Relationship::Provider),
        }
    }
}

/// One AS's best route toward the announced prefix.
///
/// The `via` pointer mirrors `provenance.learned_from()` as a *dense
/// index* into the graph used for propagation, so path reconstruction
/// follows raw indices instead of resolving ASNs through a map at every
/// hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouteEntry {
    /// How the route was learned.
    pub provenance: Provenance,
    /// AS-path length in hops (0 at the origin).
    pub hops: u32,
    /// Dense index of the neighbor the route was learned from
    /// ([`NO_VIA`] at the origin). Only meaningful against the graph
    /// that produced this entry.
    via: u32,
}

impl RouteEntry {
    /// Dense index of the upstream neighbor, if any.
    pub fn via_index(&self) -> Option<usize> {
        (self.via != NO_VIA).then_some(self.via as usize)
    }
}

/// Dense, index-based view of a topology plus per-AS policies, built once
/// and reused across many propagations.
///
/// Adjacency is stored in CSR (compressed sparse row) form — one offset
/// table plus one flat edge array per relationship — and dense indices
/// are assigned in ascending-ASN order, so index order *is* ASN order:
/// the per-level frontier sort in phase 1 degenerates to a plain integer
/// sort and every ASN tie-break can compare indices directly.
#[derive(Debug, Clone)]
pub struct DenseGraph {
    /// Ascending; dense index ↔ rank in this list.
    asns: Vec<Asn>,
    providers: CsrAdjacency,
    customers: CsrAdjacency,
    peers: CsrAdjacency,
    policies: Vec<PolicySet>,
    /// Dense indices (ascending) of ASes with at least one peer. Peer
    /// offers can only originate from and land on these, so phase 2
    /// scans this list instead of every AS — in provider-heavy graphs
    /// it is a small fraction of the node count.
    peered: Vec<u32>,
}

/// Flattened adjacency: node `u`'s neighbors are
/// `edges[offsets[u]..offsets[u + 1]]`.
#[derive(Debug, Clone, Default)]
struct CsrAdjacency {
    offsets: Vec<u32>,
    edges: Vec<u32>,
}

impl CsrAdjacency {
    fn build(asns: &[Asn], neighbors: impl Fn(Asn) -> Vec<u32>) -> Self {
        let mut offsets = Vec::with_capacity(asns.len() + 1);
        let mut edges = Vec::new();
        offsets.push(0);
        for &asn in asns {
            edges.extend(neighbors(asn));
            offsets.push(edges.len() as u32);
        }
        CsrAdjacency { offsets, edges }
    }

    #[inline]
    fn row(&self, u: usize) -> &[u32] {
        &self.edges[self.offsets[u] as usize..self.offsets[u + 1] as usize]
    }
}

impl DenseGraph {
    /// Builds the dense view. O(V + E log V).
    pub fn build(topology: &AsTopology, policies: &PolicyTable) -> Self {
        // `AsTopology::asns` iterates ascending, which is exactly the
        // dense order we need; sort defensively in case that ever
        // changes (no-op on sorted input).
        let mut asns: Vec<Asn> = topology.asns().collect();
        asns.sort_unstable();
        let to_idx = |list: &[Asn]| -> Vec<u32> {
            list.iter()
                .map(|a| asns.binary_search(a).expect("neighbor registered in topology") as u32)
                .collect()
        };
        let providers = CsrAdjacency::build(&asns, |a| to_idx(topology.providers(a)));
        let customers = CsrAdjacency::build(&asns, |a| to_idx(topology.customers(a)));
        let peers = CsrAdjacency::build(&asns, |a| to_idx(topology.peers(a)));
        let pol = asns.iter().map(|a| policies.get(*a)).collect();
        let peered = (0..asns.len())
            .filter(|&i| !peers.row(i).is_empty())
            .map(|i| i as u32)
            .collect();
        DenseGraph { asns, providers, customers, peers, policies: pol, peered }
    }

    /// Number of ASes.
    pub fn len(&self) -> usize {
        self.asns.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.asns.is_empty()
    }

    /// Dense index of an ASN.
    pub fn index_of(&self, asn: Asn) -> Option<usize> {
        self.asns.binary_search(&asn).ok()
    }

    /// ASN at a dense index.
    pub fn asn_at(&self, idx: usize) -> Asn {
        self.asns[idx]
    }

    /// Providers of the node at `u`, as dense indices.
    pub(crate) fn providers_row(&self, u: usize) -> &[u32] {
        self.providers.row(u)
    }

    /// Customers of the node at `u`, as dense indices.
    pub(crate) fn customers_row(&self, u: usize) -> &[u32] {
        self.customers.row(u)
    }

    /// Peers of the node at `u`, as dense indices.
    pub(crate) fn peers_row(&self, u: usize) -> &[u32] {
        self.peers.row(u)
    }

    /// Filtering policy of the node at `u`.
    pub(crate) fn policy_at(&self, u: usize) -> &PolicySet {
        &self.policies[u]
    }

    /// The filtering policy currently installed at dense index `u`.
    pub fn policy(&self, u: usize) -> PolicySet {
        self.policies[u]
    }

    /// Replaces the filtering policy at dense index `u` in place.
    ///
    /// Propagation reads policies from the graph, so overlay worlds
    /// (e.g. adoption-sweep trials) can flip a handful of ASes without
    /// rebuilding adjacency: mutate, propagate, then restore the saved
    /// policies to return the graph to its base state.
    pub fn set_policy(&mut self, u: usize, policy: PolicySet) {
        self.policies[u] = policy;
    }

    /// The union of every policy currently installed in the graph —
    /// the upper bound of what any node might filter on. One O(V) OR
    /// over the dense policy table, recomputed on demand because
    /// overlays mutate policies in place.
    pub fn policy_union(&self) -> PolicySet {
        self.policies.iter().fold(PolicySet::OPEN, |u, p| u.union(*p))
    }
}

/// The result of propagating one announcement: every AS's best route.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// Indexed by dense AS index.
    entries: Vec<Option<RouteEntry>>,
}

impl RoutingOutcome {
    /// The best route of `asn`, via the graph used for propagation.
    pub fn route(&self, graph: &DenseGraph, asn: Asn) -> Option<RouteEntry> {
        self.entries[graph.index_of(asn)?]
    }

    /// The route at a dense index.
    pub fn route_at(&self, idx: usize) -> Option<RouteEntry> {
        self.entries[idx]
    }

    /// Number of ASes with a route (including the origin).
    pub fn reached(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// Reconstructs the AS path from `asn` to the origin (inclusive of
    /// both ends), or `None` if `asn` has no route.
    pub fn as_path(&self, graph: &DenseGraph, asn: Asn) -> Option<Vec<Asn>> {
        walk_path(&self.entries, graph, graph.index_of(asn)?)
    }

    /// [`RoutingOutcome::as_path`] addressed by dense index.
    pub fn as_path_at(&self, graph: &DenseGraph, idx: usize) -> Option<Vec<Asn>> {
        walk_path(&self.entries, graph, idx)
    }
}

/// Follows the dense `via` chain from `idx` down to the origin — no
/// per-hop map lookups, just index chasing through the entry table.
fn walk_path(entries: &[Option<RouteEntry>], graph: &DenseGraph, idx: usize) -> Option<Vec<Asn>> {
    let mut idx = idx;
    let mut path = Vec::new();
    loop {
        let entry = entries[idx]?;
        path.push(graph.asn_at(idx));
        if entry.via == NO_VIA {
            return Some(path);
        }
        idx = entry.via as usize;
    }
}

/// Reusable working memory for [`propagate_dense_into`].
///
/// Holds every buffer propagation needs — the per-AS route table, the
/// two BFS frontiers, the peer-offer table, the sorted sender list and
/// the per-depth descent buckets — so steady-state propagation (one
/// scratch reused across many announcements over one graph) performs no
/// heap allocation: every buffer is cleared and refilled in place.
#[derive(Debug, Default)]
pub struct PropagationScratch {
    entries: Vec<Option<RouteEntry>>,
    frontier: Vec<usize>,
    next_frontier: Vec<usize>,
    senders: Vec<usize>,
    peer_offers: Vec<Option<(u32, u32)>>,
    /// Phase 3 bucket queue: `buckets[d]` holds the `(sender, receiver)`
    /// customer-edge offers at path length `d`.
    buckets: Vec<Vec<(u32, u32)>>,
    /// Leak-wave membership ([`propagate_leak_into`]): dense indices of
    /// nodes whose route traverses the leaker's re-export, as opposed
    /// to the leaker's own pre-claimed legit chain. Unused by plain
    /// propagation.
    wave: Vec<u32>,
}

impl PropagationScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A scratch pre-sized for a graph with `n` ASes, so even the first
    /// propagation does not reallocate the per-AS tables.
    pub fn with_capacity(n: usize) -> Self {
        PropagationScratch {
            entries: Vec::with_capacity(n),
            frontier: Vec::with_capacity(n),
            next_frontier: Vec::with_capacity(n),
            senders: Vec::with_capacity(n),
            peer_offers: Vec::with_capacity(n),
            buckets: Vec::new(),
            wave: Vec::new(),
        }
    }

    /// Clears and resizes the per-AS tables for a graph of `n` ASes,
    /// reusing existing capacity.
    fn reset(&mut self, n: usize) {
        self.entries.clear();
        self.entries.resize(n, None);
        // `peer_offers` is all-`None` between calls — phase 2 clears
        // each slot as it applies it — so it only ever needs to grow.
        if self.peer_offers.len() < n {
            self.peer_offers.resize(n, None);
        }
        self.frontier.clear();
        self.next_frontier.clear();
        self.senders.clear();
        self.wave.clear();
        for bucket in self.buckets.iter_mut() {
            bucket.clear();
        }
    }

    /// The best route of `asn` from the most recent propagation.
    pub fn route(&self, graph: &DenseGraph, asn: Asn) -> Option<RouteEntry> {
        self.entries[graph.index_of(asn)?]
    }

    /// The route at a dense index from the most recent propagation.
    pub fn route_at(&self, idx: usize) -> Option<RouteEntry> {
        self.entries[idx]
    }

    /// Number of ASes routed by the most recent propagation.
    pub fn reached(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }

    /// AS path from `asn` to the origin for the most recent propagation.
    pub fn as_path(&self, graph: &DenseGraph, asn: Asn) -> Option<Vec<Asn>> {
        walk_path(&self.entries, graph, graph.index_of(asn)?)
    }

    /// [`PropagationScratch::as_path`] addressed by dense index — the
    /// hot-path form collection uses after resolving each vantage's
    /// index once.
    pub fn as_path_at(&self, graph: &DenseGraph, idx: usize) -> Option<Vec<Asn>> {
        walk_path(&self.entries, graph, idx)
    }

    /// Copies the most recent propagation result into an owned
    /// [`RoutingOutcome`].
    pub fn to_outcome(&self) -> RoutingOutcome {
        RoutingOutcome { entries: self.entries.clone() }
    }
}

/// Propagates one announcement over a prebuilt dense graph.
///
/// Thin wrapper over [`propagate_dense_into`] with a fresh scratch; for
/// repeated propagation reuse one [`PropagationScratch`] to avoid
/// per-call allocation.
pub fn propagate_dense(graph: &DenseGraph, announcement: &Announcement) -> RoutingOutcome {
    let mut scratch = PropagationScratch::with_capacity(graph.len());
    propagate_dense_into(graph, announcement, &mut scratch);
    RoutingOutcome { entries: scratch.entries }
}

/// Propagates one announcement over a prebuilt dense graph into a
/// reusable scratch. The result is readable through the scratch's
/// accessors ([`PropagationScratch::route`], `reached`, `as_path`, …)
/// until the next call; it is bit-for-bit identical to what
/// [`propagate_dense`] computes, regardless of what the scratch held
/// before.
pub fn propagate_dense_into(
    graph: &DenseGraph,
    announcement: &Announcement,
    scratch: &mut PropagationScratch,
) {
    let n = graph.len();
    scratch.reset(n);
    // Destructure into disjoint borrows so the buffers can be used
    // side by side below.
    let PropagationScratch {
        entries,
        frontier,
        next_frontier,
        senders,
        peer_offers,
        buckets,
        ..
    } = scratch;

    let Some(origin_idx) = graph.index_of(announcement.origin) else {
        // Unknown origin: nothing propagates.
        return;
    };
    entries[origin_idx] =
        Some(RouteEntry { provenance: Provenance::Origin, hops: 0, via: NO_VIA });

    // --- Phase 1: customer routes climb provider edges (level BFS) ----
    frontier.push(origin_idx);
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        next_frontier.clear();
        // Ascending-ASN processing makes the lowest-neighbor tie-break
        // deterministic without per-node candidate lists. Dense index
        // order is ASN order, so a plain integer sort suffices.
        frontier.sort_unstable();
        for &u in frontier.iter() {
            for &p in graph.providers.row(u) {
                let p = p as usize;
                match entries[p] {
                    // First offer at this depth wins (lowest sender ASN
                    // thanks to the sort); entries from earlier depths
                    // are strictly better and never replaced.
                    Some(_) => continue,
                    None => {
                        if graph.policies[p]
                            .accepts(announcement, Relationship::Customer)
                        {
                            entries[p] = Some(RouteEntry {
                                provenance: Provenance::Customer(graph.asn_at(u)),
                                hops: depth,
                                via: u as u32,
                            });
                            next_frontier.push(p);
                        }
                    }
                }
            }
        }
        mem::swap(frontier, next_frontier);
    }

    // --- Phase 2: one peer hop ----------------------------------------
    // Every AS with a customer route (or the origin) offers to its peers.
    // A peer accepts the best offer (shortest, then lowest sender ASN —
    // equivalently lowest sender index) if it has no customer route.
    // Only ASes with at least one peer can make or receive an offer, so
    // the sender scan and sort run over `graph.peered` rather than the
    // whole node table.
    senders.extend(graph.peered.iter().map(|&i| i as usize).filter(|&i| entries[i].is_some()));
    senders.sort_unstable_by_key(|&i| (entries[i].expect("routed").hops, i));
    for &u in senders.iter() {
        let du = entries[u].expect("routed").hops;
        for &v in graph.peers.row(u) {
            let v = v as usize;
            if entries[v].is_some() {
                continue; // customer route (or origin) is preferred
            }
            if !graph.policies[v].accepts(announcement, Relationship::Peer) {
                continue;
            }
            let offer = (du + 1, u as u32);
            match peer_offers[v] {
                Some(best) if best <= offer => {}
                _ => peer_offers[v] = Some(offer),
            }
        }
    }
    // `peered` is ascending, so offers apply in ascending dense index
    // (= ASN) order; `take` leaves the offer table all-`None` for the
    // next call.
    for &v in graph.peered.iter() {
        let v = v as usize;
        if let Some((d, sender)) = peer_offers[v].take() {
            entries[v] = Some(RouteEntry {
                provenance: Provenance::Peer(graph.asn_at(sender as usize)),
                hops: d,
                via: sender,
            });
        }
    }

    // --- Phase 3: provider routes descend customer edges ---------------
    // Sources start at heterogeneous depths but every edge adds exactly
    // one hop, so Dijkstra degenerates to a bucket queue (Dial's
    // algorithm): an offer made while draining depth d always lands at
    // d + 1, so bucket d's membership is final before it is drained.
    // Sorting each bucket by (sender index, receiver index) reproduces
    // a binary heap's (hops, sender ASN, receiver ASN) pop order
    // exactly — index order is ASN order — without per-operation sift
    // cost.
    for u in 0..n {
        if let Some(e) = entries[u] {
            let d = (e.hops + 1) as usize;
            for &c in graph.customers.row(u) {
                let c = c as usize;
                if entries[c].is_none() {
                    if buckets.len() <= d {
                        buckets.resize_with(d + 1, Vec::new);
                    }
                    buckets[d].push((u as u32, c as u32));
                }
            }
        }
    }
    let mut d = 0usize;
    while d < buckets.len() {
        // Detach the bucket so offers for d + 1 can be filed while it
        // drains; hand the allocation back afterwards for reuse.
        let mut bucket = mem::take(&mut buckets[d]);
        bucket.sort_unstable();
        for &(sender, v) in bucket.iter() {
            let v = v as usize;
            if entries[v].is_some() {
                continue;
            }
            if !graph.policies[v].accepts(announcement, Relationship::Provider) {
                continue;
            }
            entries[v] = Some(RouteEntry {
                provenance: Provenance::Provider(graph.asn_at(sender as usize)),
                hops: d as u32,
                via: sender,
            });
            for &c in graph.customers.row(v) {
                let c = c as usize;
                if entries[c].is_none() {
                    if buckets.len() <= d + 1 {
                        buckets.resize_with(d + 2, Vec::new);
                    }
                    buckets[d + 1].push((v as u32, c as u32));
                }
            }
        }
        bucket.clear();
        buckets[d] = bucket;
        d += 1;
    }
}

/// Propagates a **route leak**: `leaker` re-exports its selected route
/// for `announcement` to *every* neighbor, violating the valley-free
/// export rule, and the wave spreads from there.
///
/// `legit` must hold the result of propagating `announcement` over the
/// same graph ([`propagate_dense_into`]); the wave is seeded from the
/// leaker's selected route in it. The result written to `scratch` is
/// the per-AS best route **via the leaker's re-export**: every wave
/// route's path runs through the leaker and down its legit chain to
/// the origin (the chain entries are copied over so
/// [`PropagationScratch::as_path_at`] reconstructs full paths). Nodes
/// on the legit chain keep their legit entries — a leaked route
/// reaching them would loop through their own ASN, which BGP loop
/// detection rejects — and never export the wave.
///
/// Import checks along the wave use [`PolicySet::accepts_route`] with
/// [`RouteAttrs::LEAKED`]: the route carries the RFC 9234 OTC mark
/// (the leaker learned it from a provider or lateral peer, which set
/// it on export) and its customer descent is broken at the leaker, so
/// only-to-customers and ASPA deployments at the leaker's providers
/// and peers reject it, while propagation *down* from the leaker — the
/// legal direction — passes path-aware checks and is limited only by
/// path-blind filters.
///
/// No-op (scratch left routeless) when the leaker is unknown, has no
/// route, or selected a customer/origin route — re-exporting those to
/// everyone is ordinary valley-free behaviour, not a leak.
pub fn propagate_leak_into(
    graph: &DenseGraph,
    announcement: &Announcement,
    leaker: Asn,
    legit: &PropagationScratch,
    scratch: &mut PropagationScratch,
) {
    let n = graph.len();
    scratch.reset(n);
    let Some(leak_idx) = graph.index_of(leaker) else { return };
    let Some(leak_entry) = legit.entries[leak_idx] else { return };
    if !matches!(leak_entry.provenance, Provenance::Provider(_) | Provenance::Peer(_)) {
        return;
    }

    let PropagationScratch {
        entries,
        frontier,
        next_frontier,
        senders,
        peer_offers,
        buckets,
        wave,
    } = scratch;

    // Pre-claim the leaker's legit chain so wave paths reconstruct all
    // the way to the origin and chain nodes are loop-rejected.
    let mut idx = leak_idx;
    loop {
        let e = legit.entries[idx].expect("legit chain entry");
        entries[idx] = Some(e);
        match e.via_index() {
            Some(v) => idx = v,
            None => break,
        }
    }
    let attrs = RouteAttrs::LEAKED;
    let base = leak_entry.hops;

    // --- Phase 1: the leaked route climbs provider edges ---------------
    // Identical level-BFS to plain propagation, but single-sourced at
    // the leaker with hops offset by the leaker's legit path length,
    // and imports checked against the leaked route attributes.
    frontier.clear();
    frontier.push(leak_idx);
    let mut depth = 0u32;
    while !frontier.is_empty() {
        depth += 1;
        next_frontier.clear();
        frontier.sort_unstable();
        for &u in frontier.iter() {
            for &p in graph.providers.row(u) {
                let p = p as usize;
                if entries[p].is_some() {
                    continue;
                }
                if graph.policies[p].accepts_route(announcement, Relationship::Customer, &attrs) {
                    entries[p] = Some(RouteEntry {
                        provenance: Provenance::Customer(graph.asn_at(u)),
                        hops: base + depth,
                        via: u as u32,
                    });
                    wave.push(p as u32);
                    next_frontier.push(p);
                }
            }
        }
        mem::swap(frontier, next_frontier);
    }

    // --- Phase 2: one peer hop ------------------------------------------
    // The leaker and every phase-1 wave node (which holds the leaked
    // route as a "customer" route) offer to their peers.
    senders.clear();
    senders.push(leak_idx);
    senders.extend(wave.iter().map(|&i| i as usize));
    senders.retain(|&i| !graph.peers.row(i).is_empty());
    senders.sort_unstable_by_key(|&i| (entries[i].expect("routed").hops, i));
    for &u in senders.iter() {
        let du = entries[u].expect("routed").hops;
        for &v in graph.peers.row(u) {
            let v = v as usize;
            if entries[v].is_some() {
                continue;
            }
            if !graph.policies[v].accepts_route(announcement, Relationship::Peer, &attrs) {
                continue;
            }
            let offer = (du + 1, u as u32);
            match peer_offers[v] {
                Some(best) if best <= offer => {}
                _ => peer_offers[v] = Some(offer),
            }
        }
    }
    for &v in graph.peered.iter() {
        let v = v as usize;
        if let Some((d, sender)) = peer_offers[v].take() {
            entries[v] = Some(RouteEntry {
                provenance: Provenance::Peer(graph.asn_at(sender as usize)),
                hops: d,
                via: sender,
            });
            wave.push(v as u32);
        }
    }

    // --- Phase 3: the leaked route descends customer edges -------------
    // Sources are the leaker plus every wave node; the legit chain does
    // not re-export the wave (its customers' leak-free routes are the
    // legit ones already propagated).
    senders.clear();
    senders.push(leak_idx);
    senders.extend(wave.iter().map(|&i| i as usize));
    for &u in senders.iter() {
        let e = entries[u].expect("routed");
        let d = (e.hops + 1) as usize;
        for &c in graph.customers.row(u) {
            let c = c as usize;
            if entries[c].is_none() {
                if buckets.len() <= d {
                    buckets.resize_with(d + 1, Vec::new);
                }
                buckets[d].push((u as u32, c as u32));
            }
        }
    }
    let mut d = 0usize;
    while d < buckets.len() {
        let mut bucket = mem::take(&mut buckets[d]);
        bucket.sort_unstable();
        for &(sender, v) in bucket.iter() {
            let v = v as usize;
            if entries[v].is_some() {
                continue;
            }
            if !graph.policies[v].accepts_route(announcement, Relationship::Provider, &attrs) {
                continue;
            }
            entries[v] = Some(RouteEntry {
                provenance: Provenance::Provider(graph.asn_at(sender as usize)),
                hops: d as u32,
                via: sender,
            });
            wave.push(v as u32);
            for &c in graph.customers.row(v) {
                let c = c as usize;
                if entries[c].is_none() {
                    if buckets.len() <= d + 1 {
                        buckets.resize_with(d + 2, Vec::new);
                    }
                    buckets[d + 1].push((v as u32, c as u32));
                }
            }
        }
        bucket.clear();
        buckets[d] = bucket;
        d += 1;
    }
}

/// Convenience wrapper: builds the dense graph and propagates once.
/// For repeated propagation build a [`DenseGraph`] and call
/// [`propagate_dense`].
pub fn propagate(
    topology: &AsTopology,
    policies: &PolicyTable,
    announcement: &Announcement,
) -> (DenseGraph, RoutingOutcome) {
    let graph = DenseGraph::build(topology, policies);
    let outcome = propagate_dense(&graph, announcement);
    (graph, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyExtension;
    use crate::testutil::topo;
    use manrs_irr::IrrStatus;
    use manrs_rpki::RpkiStatus;

    fn ann(origin: u32) -> Announcement {
        Announcement::new(
            "10.0.0.0/16".parse().unwrap(),
            Asn(origin),
            RpkiStatus::NotFound,
            IrrStatus::NotFound,
        )
    }

    fn ann_with(origin: u32, rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
        Announcement::new("10.0.0.0/16".parse().unwrap(), Asn(origin), rpki, irr)
    }

    #[test]
    fn chain_propagation_up_and_down() {
        // 1 -> 2 -> 3 (providers to customers); origin at 3.
        let t = topo(3, &[(1, 2), (2, 3)], &[]);
        let (g, o) = propagate(&t, &PolicyTable::default(), &ann(3));
        assert_eq!(o.reached(), 3);
        assert_eq!(o.as_path(&g, Asn(1)).unwrap(), vec![Asn(1), Asn(2), Asn(3)]);
        assert_eq!(o.route(&g, Asn(2)).unwrap().provenance, Provenance::Customer(Asn(3)));
        // Origin at 1 instead: routes descend.
        let (g, o) = propagate(&t, &PolicyTable::default(), &ann(1));
        assert_eq!(o.reached(), 3);
        assert_eq!(o.route(&g, Asn(3)).unwrap().provenance, Provenance::Provider(Asn(2)));
        assert_eq!(o.as_path(&g, Asn(3)).unwrap(), vec![Asn(3), Asn(2), Asn(1)]);
    }

    #[test]
    fn valley_free_no_transit_through_peer() {
        // 1 -- 2 peers; 1 -> 3, 2 -> 4 customers. Origin at 3:
        // 2 hears via peer 1; 4 hears from provider 2 (provider route).
        // But 2 must NOT export the peer route to its peer or providers.
        let t = topo(4, &[(1, 3), (2, 4)], &[(1, 2)]);
        let (g, o) = propagate(&t, &PolicyTable::default(), &ann(3));
        assert_eq!(o.route(&g, Asn(2)).unwrap().provenance, Provenance::Peer(Asn(1)));
        assert_eq!(o.route(&g, Asn(4)).unwrap().provenance, Provenance::Provider(Asn(2)));
        assert_eq!(o.as_path(&g, Asn(4)).unwrap(), vec![Asn(4), Asn(2), Asn(1), Asn(3)]);
    }

    #[test]
    fn peer_route_not_reexported_to_peer() {
        // Chain of peers: 1 -- 2 -- 3; 1 originates. 3 must NOT learn
        // (peer routes do not cross two peer links).
        let t = topo(3, &[], &[(1, 2), (2, 3)]);
        let (g, o) = propagate(&t, &PolicyTable::default(), &ann(1));
        assert!(o.route(&g, Asn(2)).is_some());
        assert!(o.route(&g, Asn(3)).is_none());
    }

    #[test]
    fn customer_route_preferred_over_peer_and_provider() {
        // 4 originates. 2 is a provider of 4; 2 also peers with 3 which
        // is a provider of 4. 2 must pick the customer route (via 4
        // directly), not the peer route via 3.
        let t = topo(4, &[(2, 4), (3, 4)], &[(2, 3)]);
        let (g, o) = propagate(&t, &PolicyTable::default(), &ann(4));
        assert_eq!(o.route(&g, Asn(2)).unwrap().provenance, Provenance::Customer(Asn(4)));
        assert_eq!(o.route(&g, Asn(3)).unwrap().provenance, Provenance::Customer(Asn(4)));
    }

    #[test]
    fn shortest_path_tie_break() {
        // Two provider chains to 1: via 2 (one hop) and via 3->4 (two
        // hops). 5 provides to both 2 and 4; 5 must route via 2.
        let t = topo(5, &[(2, 1), (4, 3), (3, 1), (5, 2), (5, 4)], &[]);
        let (g, o) = propagate(&t, &PolicyTable::default(), &ann(1));
        assert_eq!(o.as_path(&g, Asn(5)).unwrap(), vec![Asn(5), Asn(2), Asn(1)]);
    }

    #[test]
    fn lowest_asn_tie_break() {
        // 1 is originated; 2 and 3 both provide to 1; 4 provides to both
        // 2 and 3. Equal length: 4 must pick via 2 (lower ASN).
        let t = topo(4, &[(2, 1), (3, 1), (4, 2), (4, 3)], &[]);
        let (g, o) = propagate(&t, &PolicyTable::default(), &ann(1));
        assert_eq!(o.route(&g, Asn(4)).unwrap().provenance, Provenance::Customer(Asn(2)));
    }

    #[test]
    fn rov_filtering_blocks_and_stops_reexport() {
        // Chain 1 -> 2 -> 3, origin 3, with 2 deploying ROV and the
        // announcement RPKI-Invalid: 2 rejects, so 1 never hears it.
        let t = topo(3, &[(1, 2), (2, 3)], &[]);
        let mut policies = PolicyTable::default();
        policies.set(Asn(2), PolicySet::OPEN.with(PolicyExtension::Rov));
        let a = ann_with(3, RpkiStatus::InvalidAsn, IrrStatus::NotFound);
        let (g, o) = propagate(&t, &policies, &a);
        assert!(o.route(&g, Asn(2)).is_none());
        assert!(o.route(&g, Asn(1)).is_none());
        assert_eq!(o.reached(), 1);
    }

    #[test]
    fn irr_filtering_only_blocks_customer_side() {
        // 2 filters customers by IRR. Origin 3 (customer of 2) with IRR
        // Invalid: blocked. But if 3 is 2's *provider*, not blocked.
        let t = topo(3, &[(1, 2), (2, 3)], &[]);
        let mut policies = PolicyTable::default();
        policies.set(Asn(2), PolicySet::OPEN.with(PolicyExtension::IrrCustomer));
        let a = ann_with(3, RpkiStatus::NotFound, IrrStatus::InvalidAsn);
        let (g, o) = propagate(&t, &policies, &a);
        assert!(o.route(&g, Asn(2)).is_none());

        // Origin at 1 (2's provider): the IRR-invalid route flows down.
        let a = ann_with(1, RpkiStatus::NotFound, IrrStatus::InvalidAsn);
        let (g, o) = propagate(&t, &policies, &a);
        assert!(o.route(&g, Asn(2)).is_some());
        assert!(o.route(&g, Asn(3)).is_some());
    }

    #[test]
    fn origin_always_installs_its_own_route() {
        let t = topo(1, &[], &[]);
        let mut policies = PolicyTable::default();
        policies.set(Asn(1), PolicySet::MANRS_CDN);
        let a = ann_with(1, RpkiStatus::InvalidAsn, IrrStatus::InvalidAsn);
        let (g, o) = propagate(&t, &policies, &a);
        assert_eq!(o.route(&g, Asn(1)).unwrap().provenance, Provenance::Origin);
    }

    #[test]
    fn unknown_origin_reaches_nobody() {
        let t = topo(2, &[(1, 2)], &[]);
        let (_, o) = propagate(&t, &PolicyTable::default(), &ann(99));
        assert_eq!(o.reached(), 0);
    }

    #[test]
    fn dirty_scratch_matches_fresh_propagation() {
        // Reuse one scratch across different origins (including an
        // unknown one) and compare each result against a fresh
        // propagate_dense.
        let t = topo(5, &[(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)], &[(2, 3)]);
        let policies = PolicyTable::default();
        let graph = DenseGraph::build(&t, &policies);
        let mut scratch = PropagationScratch::new();
        for origin in [5u32, 1, 99, 3, 5] {
            let a = ann(origin);
            propagate_dense_into(&graph, &a, &mut scratch);
            let fresh = propagate_dense(&graph, &a);
            assert_eq!(scratch.reached(), fresh.reached());
            for idx in 0..graph.len() {
                assert_eq!(scratch.route_at(idx), fresh.route_at(idx));
            }
            for asn in 1..=5 {
                assert_eq!(scratch.as_path(&graph, Asn(asn)), fresh.as_path(&graph, Asn(asn)));
            }
            assert_eq!(scratch.to_outcome().reached(), fresh.reached());
        }
    }

    /// Origin 1 under provider 2; 2 peers with 3; 3 and 5 both provide
    /// to 4 (the multi-homed leaker); 4 peers with 6. Legitimately the
    /// route reaches {1, 2, 3, 4}; 5 and 6 only ever hear it leaked.
    fn leak_topo() -> AsTopology {
        topo(6, &[(2, 1), (3, 4), (5, 4)], &[(2, 3), (4, 6)])
    }

    fn leak_scratches(
        policies: &PolicyTable,
        a: &Announcement,
        leaker: u32,
    ) -> (DenseGraph, PropagationScratch, PropagationScratch) {
        let graph = DenseGraph::build(&leak_topo(), policies);
        let mut legit = PropagationScratch::new();
        propagate_dense_into(&graph, a, &mut legit);
        let mut leak = PropagationScratch::new();
        propagate_leak_into(&graph, a, Asn(leaker), &legit, &mut leak);
        (graph, legit, leak)
    }

    #[test]
    fn leak_spreads_to_second_provider_and_peer() {
        let (g, legit, leak) = leak_scratches(&PolicyTable::default(), &ann(1), 4);
        // Legitimately neither 5 nor 6 hears the route.
        assert!(legit.route(&g, Asn(5)).is_none());
        assert!(legit.route(&g, Asn(6)).is_none());
        // The leak carries it through 4's full path to the origin.
        assert_eq!(
            leak.as_path(&g, Asn(5)).unwrap(),
            vec![Asn(5), Asn(4), Asn(3), Asn(2), Asn(1)]
        );
        assert_eq!(
            leak.as_path(&g, Asn(6)).unwrap(),
            vec![Asn(6), Asn(4), Asn(3), Asn(2), Asn(1)]
        );
        assert_eq!(leak.route(&g, Asn(5)).unwrap().provenance, Provenance::Customer(Asn(4)));
        assert_eq!(leak.route(&g, Asn(6)).unwrap().provenance, Provenance::Peer(Asn(4)));
        assert_eq!(leak.route(&g, Asn(5)).unwrap().hops, 4);
        // Chain nodes keep their legit entries bit-for-bit.
        for asn in [1u32, 2, 3, 4] {
            assert_eq!(leak.route(&g, Asn(asn)), legit.route(&g, Asn(asn)));
        }
    }

    #[test]
    fn only_to_customers_contains_the_leak() {
        let mut policies = PolicyTable::default();
        policies.set(Asn(5), PolicySet::OPEN.with(PolicyExtension::OnlyToCustomers));
        policies.set(Asn(6), PolicySet::OPEN.with(PolicyExtension::OnlyToCustomers));
        let (g, _, leak) = leak_scratches(&policies, &ann(1), 4);
        // RFC 9234: the OTC-marked route from customer 4 (at 5) and
        // lateral peer 4 (at 6) is rejected.
        assert!(leak.route(&g, Asn(5)).is_none());
        assert!(leak.route(&g, Asn(6)).is_none());
        assert_eq!(leak.reached(), 4); // just the pre-claimed legit chain
    }

    #[test]
    fn aspa_contains_the_leak() {
        let mut policies = PolicyTable::default();
        policies.set(Asn(5), PolicySet::OPEN.with(PolicyExtension::Aspa));
        let (g, _, leak) = leak_scratches(&policies, &ann(1), 4);
        // The leaked route's descent breaks at 4 (provider-learned), so
        // provider verification at 5 rejects it; the lateral peer 6
        // still accepts.
        assert!(leak.route(&g, Asn(5)).is_none());
        assert!(leak.route(&g, Asn(6)).is_some());
    }

    #[test]
    fn path_blind_filters_still_apply_to_leaks() {
        let mut policies = PolicyTable::default();
        policies.set(Asn(5), PolicySet::OPEN.with(PolicyExtension::Rov));
        let a = ann_with(1, RpkiStatus::InvalidAsn, IrrStatus::NotFound);
        let (g, _, leak) = leak_scratches(&policies, &a, 4);
        assert!(leak.route(&g, Asn(5)).is_none(), "ROV drops the leaked Invalid");
        // A clean announcement passes ROV even when leaked.
        let a = ann_with(1, RpkiStatus::Valid, IrrStatus::NotFound);
        let (g, _, leak) = leak_scratches(&policies, &a, 4);
        assert!(leak.route(&g, Asn(5)).is_some());
    }

    #[test]
    fn non_leakable_routes_are_noops() {
        // Origin, customer-route holder, routeless, and unknown leakers
        // all produce an empty wave.
        for leaker in [1u32, 2, 5, 99] {
            let (_, _, leak) = leak_scratches(&PolicyTable::default(), &ann(1), leaker);
            assert_eq!(leak.reached(), 0, "leaker {leaker}");
        }
    }

    #[test]
    fn diamond_paths_are_loop_free() {
        // 1 -> {2,3} -> 4 -> 5 chains with peering noise.
        let t = topo(5, &[(1, 2), (1, 3), (2, 4), (3, 4), (4, 5)], &[(2, 3)]);
        let (g, o) = propagate(&t, &PolicyTable::default(), &ann(5));
        for asn in 1..=5 {
            if let Some(path) = o.as_path(&g, Asn(asn)) {
                let mut dedup = path.clone();
                dedup.sort();
                dedup.dedup();
                assert_eq!(dedup.len(), path.len(), "loop in path {path:?}");
                assert_eq!(*path.last().unwrap(), Asn(5));
            }
        }
    }
}
