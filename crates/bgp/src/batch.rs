//! Thread-chunked batched validation over the compiled RPKI/IRR
//! indexes.
//!
//! The pipelines that validate whole tables (snapshot construction,
//! dump re-ingestion, scenario builds) all need the same thing: both
//! the RFC 6811 status and the IRR status for every (prefix, origin)
//! pair in a table. [`validate_pairs_batch`] splits the pair list into
//! contiguous per-thread chunks and runs the allocation-free batch
//! kernels of [`CompiledVrpIndex`] / [`CompiledIrrIndex`] inside each
//! worker, with one reused scratch per worker. Results come back in
//! input order, bit-for-bit identical for any thread count.

use crate::parallel::{par_map_with, ParallelConfig};
use manrs_irr::{CompiledIrrIndex, IrrStatus};
use manrs_net::{Asn, BatchScratch, Prefix};
use manrs_rpki::{CompiledVrpIndex, RpkiStatus};

/// Validates every `(prefix, origin)` pair against both compiled
/// indexes; `result[i]` corresponds to `pairs[i]`.
///
/// Parallelism is over contiguous chunks of the batch (one chunk per
/// effective worker), so each worker keeps the prefix-sorted locality
/// of the batch kernels and reuses one scratch across its chunks.
pub fn validate_pairs_batch(
    cfg: &ParallelConfig,
    rpki_index: &CompiledVrpIndex,
    irr_index: &CompiledIrrIndex,
    pairs: &[(Prefix, Asn)],
) -> Vec<(RpkiStatus, IrrStatus)> {
    if pairs.is_empty() {
        return Vec::new();
    }
    let threads = cfg.effective_threads(pairs.len());
    let chunk_len = pairs.len().div_ceil(threads).max(1);
    let chunks: Vec<&[(Prefix, Asn)]> = pairs.chunks(chunk_len).collect();
    let per_chunk = par_map_with(
        // One work item per chunk: chunked fan-out is already done here,
        // so let every chunk go to its own worker.
        &ParallelConfig { threads: cfg.threads, chunk: 1 },
        &chunks,
        || (BatchScratch::new(), Vec::new(), Vec::new()),
        |(scratch, rpki_out, irr_out), chunk: &&[(Prefix, Asn)]| {
            rpki_index.validate_batch_into(chunk, scratch, rpki_out);
            irr_index.validate_batch_into(chunk, scratch, irr_out);
            rpki_out
                .iter()
                .copied()
                .zip(irr_out.iter().copied())
                .collect::<Vec<(RpkiStatus, IrrStatus)>>()
        },
    );
    let mut out = Vec::with_capacity(pairs.len());
    for chunk in per_chunk {
        out.extend(chunk);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_irr::{validate_irr, IrrDatabase, IrrRegistry, RouteObject};
    use manrs_rpki::{validate_origin, Vrp, VrpSet};

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn fixtures() -> (VrpSet, IrrRegistry) {
        let vrps: VrpSet = [
            Vrp::new(p("10.0.0.0/8"), Asn(9), 8),
            Vrp::new(p("10.0.0.0/16"), Asn(1), 20),
            Vrp::new(p("203.0.113.0/24"), Asn::ZERO, 24),
        ]
        .into_iter()
        .collect();
        let mut db = IrrDatabase::new("RADB", None);
        for (prefix, origin) in [("10.0.0.0/16", 1u32), ("10.0.0.0/8", 9), ("2001:db8::/32", 5)] {
            db.add_route(RouteObject {
                prefix: p(prefix),
                origin: Asn(origin),
                descr: String::new(),
                mnt_by: "M".into(),
                source: "RADB".into(),
                last_modified: manrs_net::Date::ymd(2022, 1, 1),
            });
        }
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        (vrps, reg)
    }

    #[test]
    fn matches_scalar_oracles_at_every_thread_count() {
        let (vrps, reg) = fixtures();
        let rpki_index = CompiledVrpIndex::build(&vrps);
        let irr_index = CompiledIrrIndex::build(&reg);
        let pairs: Vec<(Prefix, Asn)> = [
            ("10.0.0.0/16", 1u32),
            ("10.0.0.0/20", 1),
            ("10.0.0.0/24", 1),
            ("10.0.0.0/16", 9),
            ("203.0.113.0/24", 7),
            ("192.0.2.0/24", 1),
            ("2001:db8::/32", 5),
            ("2001:db8::/48", 5),
        ]
        .into_iter()
        .map(|(s, o)| (p(s), Asn(o)))
        .collect();
        let want: Vec<(RpkiStatus, IrrStatus)> = pairs
            .iter()
            .map(|(q, o)| (validate_origin(&vrps, q, *o), validate_irr(&reg, q, *o)))
            .collect();
        for threads in [1, 2, 4, 8] {
            let cfg = ParallelConfig::with_threads(threads);
            let got = validate_pairs_batch(&cfg, &rpki_index, &irr_index, &pairs);
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_batch() {
        let (vrps, reg) = fixtures();
        let rpki_index = CompiledVrpIndex::build(&vrps);
        let irr_index = CompiledIrrIndex::build(&reg);
        assert!(validate_pairs_batch(&ParallelConfig::auto(), &rpki_index, &irr_index, &[])
            .is_empty());
    }
}
