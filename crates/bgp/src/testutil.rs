//! Shared test fixtures for the `manrs-bgp` unit-test modules.
//!
//! Every test module used to carry its own copy of the same topology
//! builders; they live here once instead. Only compiled for tests.

use manrs_net::{Asn, Rir};
use manrs_topology::{AsInfo, AsTopology, NetworkKind, OrgId};

/// A topology of `n` transit ASes (ASN 1..=n) with the given
/// provider→customer and peer links.
pub fn topo(n: u32, cp: &[(u32, u32)], pp: &[(u32, u32)]) -> AsTopology {
    let mut t = AsTopology::new();
    for asn in 1..=n {
        t.add_as(AsInfo {
            asn: Asn(asn),
            org: OrgId(asn),
            rir: Rir::Arin,
            country: "US".into(),
            kind: NetworkKind::Transit,
        });
    }
    for &(p, c) in cp {
        t.add_provider_customer(Asn(p), Asn(c));
    }
    for &(a, b) in pp {
        t.add_peer(Asn(a), Asn(b));
    }
    t
}

/// A deterministic synthetic mesh big enough for real fan-out:
/// layered provider chains plus peering links between siblings.
pub fn wide_topo(n: u32) -> AsTopology {
    let mut t = topo(n, &[], &[]);
    for asn in 2..=n {
        // Two providers among lower-numbered ASes keeps the graph
        // acyclic in the customer-provider direction.
        t.add_provider_customer(Asn(1 + (asn * 7) % (asn - 1)), Asn(asn));
        if asn > 3 {
            t.add_provider_customer(Asn(1 + (asn * 13) % (asn - 2)), Asn(asn));
        }
        if asn % 5 == 0 && asn < n {
            t.add_peer(Asn(asn), Asn(asn + 1));
        }
    }
    t
}
