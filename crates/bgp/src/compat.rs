//! Deprecated 0.2.0 surface, consolidated.
//!
//! Everything here forwards through the builder-style APIs
//! ([`TableCollector`] / [`crate::CollectionPlan`]) and exists only so
//! pre-0.2.0 callers keep compiling. New code should not import from
//! this module; the deprecation notes name the replacement.

use crate::announcement::Announcement;
use crate::collector::CollectedRib;
use crate::parallel::ParallelConfig;
use crate::policy::PolicyTable;
use crate::table::TableCollector;
use manrs_net::Asn;
use manrs_topology::AsTopology;

/// Propagates every announcement and collects the vantage view, using
/// the thread count from `MANRS_THREADS` (auto-detected when unset).
#[deprecated(since = "0.2.0", note = "use `TableCollector::new(...).plan().collect(...)`")]
pub fn collect_table(
    topology: &AsTopology,
    policies: &PolicyTable,
    announcements: &[Announcement],
    vantages: &[Asn],
) -> CollectedRib {
    TableCollector::new(topology, policies, vantages).plan().collect(announcements)
}

/// [`collect_table`] with an explicit parallelism configuration.
#[deprecated(
    since = "0.2.0",
    note = "use `TableCollector::new(...).parallel(cfg).plan().collect(...)`"
)]
pub fn collect_table_with(
    topology: &AsTopology,
    policies: &PolicyTable,
    announcements: &[Announcement],
    vantages: &[Asn],
    cfg: &ParallelConfig,
) -> CollectedRib {
    TableCollector::new(topology, policies, vantages)
        .parallel(*cfg)
        .plan()
        .collect(announcements)
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)]

    use super::*;
    use manrs_irr::IrrStatus;
    use manrs_rpki::RpkiStatus;

    #[test]
    fn shims_match_builder_collection() {
        let t = crate::testutil::topo(4, &[(1, 2), (2, 3), (2, 4)], &[]);
        let policies = PolicyTable::default();
        let anns = vec![Announcement::new(
            "10.0.0.0/16".parse().unwrap(),
            Asn(3),
            RpkiStatus::Valid,
            IrrStatus::Valid,
        )];
        let vantages = [Asn(1), Asn(4)];
        let via_builder = TableCollector::new(&t, &policies, &vantages).collect(&anns);
        let via_shim = collect_table(&t, &policies, &anns, &vantages);
        let via_shim_cfg =
            collect_table_with(&t, &policies, &anns, &vantages, &ParallelConfig::serial());
        assert_eq!(via_shim.observations, via_builder.observations);
        assert_eq!(via_shim.pool(), via_builder.pool());
        assert_eq!(via_shim_cfg.observations, via_builder.observations);
        assert_eq!(via_shim_cfg.pool(), via_builder.pool());
    }
}
