//! Whole-table collection with per-(origin, filter-class) memoization
//! and a strategy-typed [`CollectionPlan`] entry point.
//!
//! Propagating every (prefix, origin) pair independently would repeat
//! identical work: the routing outcome depends only on the origin and on
//! how filters react to the announcement's registry statuses. Path-blind
//! policy extensions consult exactly (a) whether ROV drops it and (b)
//! its IRR status, so announcements from the same origin fall into a
//! handful of equivalence classes — widened only along the dimensions
//! the *active* policy union can read — and one propagation per class
//! serves every prefix in it. Path-aware extensions (ASPA, RFC 9234
//! only-to-customers, path-end validation) break this equivalence, so
//! any path-aware extension in the graph forces forward collection.
//!
//! Two collection strategies produce the (bit-for-bit identical) result:
//!
//! * [`CollectionStrategy::Forward`] — one Gao–Rexford propagation per
//!   class, vantage rows read out of each run. Cost scales with the
//!   class count.
//! * [`CollectionStrategy::Reverse`] — one backward traversal per
//!   (vantage, acceptance-class) pair ([`crate::reverse`]), yielding the
//!   vantage's route toward *every* origin at once; classes are stitched
//!   by masking each class's origin into the shared views. Cost scales
//!   with the vantage count.
//!
//! [`CollectionStrategy::Auto`] (the default) picks reverse exactly when
//! there are fewer vantages than classes — the regime the paper's
//! collector-projection pipeline lives in.

use crate::announcement::Announcement;
use crate::collector::{CollectedRib, Observation};
use crate::parallel::{par_map_with, ParallelConfig};
use crate::pathpool::{PathId, PathInterner};
use crate::policy::{PolicySet, PolicyTable};
use crate::propagate::{propagate_dense_into, DenseGraph, PropagationScratch};
use crate::reverse::{AcceptClass, ReverseScratch};
use manrs_net::Asn;
use manrs_topology::AsTopology;
use std::collections::{BTreeSet, HashMap, HashSet};

/// How a [`CollectionPlan`] turns announcements into a [`CollectedRib`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectionStrategy {
    /// One forward propagation per (origin, acceptance-class); vantage
    /// rows are read out of each run. Scales with the class count.
    Forward,
    /// One reverse valley-free traversal per (vantage,
    /// acceptance-class); per-class origins are masked into the shared
    /// views. Scales with the vantage count. Only legal for path-blind
    /// policy mixes — a path-aware extension anywhere in the graph
    /// forces [`CollectionStrategy::Forward`] at resolution time.
    Reverse,
    /// Pick [`CollectionStrategy::Reverse`] exactly when the mix is
    /// path-blind and the modelled reverse cost undercuts one forward
    /// propagation per (origin, acceptance-class), otherwise
    /// [`CollectionStrategy::Forward`].
    #[default]
    Auto,
}

/// Number of distinct (origin, acceptance-class) equivalence classes in
/// an announcement set under the active policy union — the unit of
/// forward-propagation work, and the quantity
/// [`CollectionStrategy::Auto`] weighs against the reverse strategy's
/// cost.
///
/// `active` is the union of every policy deployed in the graph
/// ([`DenseGraph::policy_union`] /
/// [`crate::PolicyTable::active_union`]): classes only split on the
/// dimensions some active extension can read, so an all-open graph has
/// one class per origin and filtering deployments widen from there.
pub fn distinct_classes(announcements: &[Announcement], active: PolicySet) -> usize {
    let mut seen: HashSet<(Asn, AcceptClass)> = HashSet::new();
    for ann in announcements {
        seen.insert((ann.origin, AcceptClass::of(ann, active)));
    }
    seen.len()
}

/// Number of distinct *acceptance* classes (origin aside — see
/// [`AcceptClass`]) under the active union: the unit of
/// reverse-traversal work per vantage. At most six.
pub fn distinct_accept_classes(announcements: &[Announcement], active: PolicySet) -> usize {
    let mut seen: HashSet<AcceptClass> = HashSet::new();
    for ann in announcements {
        seen.insert(AcceptClass::of(ann, active));
    }
    seen.len()
}

/// Cost-model constants for [`CollectionStrategy::Auto`], in units of
/// "one forward propagation". A reverse work item runs one customer-cone
/// BFS + peer-cone BFS per provider-closure node plus the closure
/// Dijkstra, so its cost grows with the vantage's provider-closure
/// size. Calibrated against the `reverse_collection` stage of
/// `BENCH_propagation.json` at medium scale (25 vantages, ~5-node
/// closures, 6 accept classes vs 4379 forward classes: one reverse item
/// measured ≈ 8× one forward propagation).
const REVERSE_ITEM_BASE: f64 = 0.55;
const REVERSE_ITEM_PER_CLOSURE: f64 = 0.75;

/// An explicit, ordered set of vantage ASes for collection — the
/// output of vantage-value selection (`manrs_ihr::selection`) and the
/// input of [`CollectionPlan::vantage_set`].
///
/// Order is significant: collection emits one path per vantage in set
/// order, so two plans given the same `VantageSet` produce bit-for-bit
/// identical RIBs. Selection emits subsets in the *original* vantage
/// order (not greedy-pick order) for exactly this reason — collecting
/// on the subset equals projecting the full-vantage RIB onto it.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct VantageSet {
    vantages: Vec<Asn>,
}

impl VantageSet {
    /// Wraps an ordered list of vantage ASes.
    pub fn new(vantages: Vec<Asn>) -> Self {
        VantageSet { vantages }
    }

    /// The vantages, in collection order.
    pub fn vantages(&self) -> &[Asn] {
        &self.vantages
    }

    /// Number of vantages in the set.
    pub fn len(&self) -> usize {
        self.vantages.len()
    }

    /// True when the set holds no vantages.
    pub fn is_empty(&self) -> bool {
        self.vantages.is_empty()
    }

    /// True when `asn` is in the set (linear scan; sets are small).
    pub fn contains(&self, asn: Asn) -> bool {
        self.vantages.contains(&asn)
    }
}

/// The [`CollectionStrategy::Auto`] cost decision, made queryable: both
/// modelled costs, the counts that drive them, and the strategy the
/// plan resolves to. Produced by [`CollectionPlan::cost_report`]; the
/// resolution path itself goes through this same computation, so the
/// report *is* the decision, not a parallel estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostReport {
    /// Vantage count the reverse cost scales with (the plan's selected
    /// vantage set, not the topology's full population).
    pub vantages: usize,
    /// Distinct (origin, acceptance-class) classes — forward work units.
    pub origin_classes: usize,
    /// Distinct acceptance classes — reverse traversals per vantage.
    pub accept_classes: usize,
    /// Sum of the selected vantages' provider-closure sizes.
    pub closure_sum: usize,
    /// Modelled forward cost, in units of one forward propagation.
    pub forward_cost: f64,
    /// Modelled reverse cost, same units.
    pub reverse_cost: f64,
    /// True when the active union reads the path — reverse is illegal
    /// and every requested strategy resolves to forward.
    pub path_aware: bool,
    /// The strategy the plan was configured with.
    pub requested: CollectionStrategy,
    /// The strategy the plan resolves to (never `Auto`).
    pub chosen: CollectionStrategy,
}

/// Builder-style entry point for whole-table collection: fix the
/// topology, policies, and vantage points once, optionally override the
/// parallelism, then collect one or more announcement sets.
///
/// [`TableCollector::collect`] is shorthand for
/// `plan().collect(...)` — every collection goes through a
/// [`CollectionPlan`].
///
/// ```
/// # use manrs_bgp::{TableCollector, CollectionStrategy, PolicyTable, ParallelConfig};
/// # use manrs_topology::AsTopology;
/// # let topology = AsTopology::new();
/// # let policies = PolicyTable::default();
/// # let vantages: Vec<manrs_net::Asn> = Vec::new();
/// let rib = TableCollector::new(&topology, &policies, &vantages)
///     .parallel(ParallelConfig::serial())
///     .plan()
///     .strategy(CollectionStrategy::Auto)
///     .collect(&[]);
/// # assert_eq!(rib.observations.len(), 0);
/// ```
///
/// Announcement order is preserved in the output. Memoization is per
/// (origin, filter class); with the four RPKI × four IRR statuses there
/// are at most eight classes per origin, and real mixes produce one or
/// two. Classes are discovered and numbered serially in announcement
/// order, paths are interned serially in class order, and every
/// announcement in a class references the class's [`PathId`]s, so the
/// output (ids included) is bit-for-bit identical for any thread count
/// and either strategy — including [`ParallelConfig::serial`].
#[derive(Debug, Clone)]
pub struct TableCollector<'a> {
    topology: &'a AsTopology,
    policies: &'a PolicyTable,
    vantages: &'a [Asn],
    parallel: ParallelConfig,
}

impl<'a> TableCollector<'a> {
    /// Creates a collector with the thread count taken from
    /// `MANRS_THREADS` (auto-detected when unset).
    pub fn new(topology: &'a AsTopology, policies: &'a PolicyTable, vantages: &'a [Asn]) -> Self {
        TableCollector { topology, policies, vantages, parallel: ParallelConfig::from_env() }
    }

    /// Overrides the parallelism configuration.
    pub fn parallel(mut self, cfg: ParallelConfig) -> Self {
        self.parallel = cfg;
        self
    }

    /// Freezes this collector into a [`CollectionPlan`] (strategy
    /// defaults to [`CollectionStrategy::Auto`]).
    pub fn plan(&self) -> CollectionPlan<'a> {
        CollectionPlan {
            topology: self.topology,
            policies: self.policies,
            vantages: self.vantages,
            parallel: self.parallel,
            strategy: CollectionStrategy::default(),
        }
    }

    /// Propagates every announcement and collects the vantage view —
    /// shorthand for `self.plan().collect(announcements)`.
    pub fn collect(&self, announcements: &[Announcement]) -> CollectedRib {
        self.plan().collect(announcements)
    }
}

/// A fully-specified collection: topology, policies, vantages,
/// parallelism, and [`CollectionStrategy`]. Built by
/// [`TableCollector::plan`]; reusable across announcement sets.
#[derive(Debug, Clone)]
pub struct CollectionPlan<'a> {
    topology: &'a AsTopology,
    policies: &'a PolicyTable,
    vantages: &'a [Asn],
    parallel: ParallelConfig,
    strategy: CollectionStrategy,
}

impl<'a> CollectionPlan<'a> {
    /// Overrides the collection strategy.
    pub fn strategy(mut self, strategy: CollectionStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Overrides the parallelism configuration.
    pub fn parallel(mut self, cfg: ParallelConfig) -> Self {
        self.parallel = cfg;
        self
    }

    /// Collects from `set`'s vantages instead of the collector's full
    /// population. The borrow must outlive the plan, which is why the
    /// set is taken by reference — a selection computed once (e.g. by
    /// `SweepBase`) serves every subsequent collection.
    ///
    /// [`CollectionStrategy::Auto`]'s reverse cost scales with the
    /// *selected* vantage count and provider closures, so shrinking the
    /// set flips more workloads to reverse.
    pub fn vantage_set(mut self, set: &'a VantageSet) -> Self {
        self.vantages = set.vantages();
        self
    }

    /// The strategy this plan resolves to for this announcement set,
    /// under the policy union of this plan's table.
    ///
    /// A path-aware extension anywhere in the active union makes
    /// reverse collection illegal — acceptance classes cannot capture
    /// verdicts that read the route's travel — so **any** strategy
    /// (explicit `Reverse` included) resolves to
    /// [`CollectionStrategy::Forward`] in that case.
    ///
    /// For path-blind unions, Auto compares modelled costs in units of
    /// one forward propagation: forward costs one unit per (origin,
    /// acceptance-class); reverse costs, per (vantage,
    /// acceptance-class) work item, a base term plus a term linear in
    /// the vantage's provider-closure size (each closure node runs its
    /// own cone BFSes, and the closure Dijkstra's seeding scans every
    /// origin per node). The constants are calibrated from the
    /// `reverse_collection` bench stage.
    ///
    /// [`CollectionPlan::collect_on`] resolves against the *graph's*
    /// current policy union instead, so overlay mutations
    /// ([`DenseGraph::set_policy`]) are honored.
    pub fn resolved_strategy(&self, announcements: &[Announcement]) -> CollectionStrategy {
        self.resolve_with(self.policies.active_union(), announcements)
    }

    /// The full cost decision behind [`CollectionPlan::resolved_strategy`]:
    /// modelled forward/reverse costs, the counts that drive them, and
    /// the resolved strategy, under this plan's table's active policy
    /// union. Resolution delegates here, so there is exactly one cost
    /// implementation.
    pub fn cost_report(&self, announcements: &[Announcement]) -> CostReport {
        self.cost_report_with(self.policies.active_union(), announcements)
    }

    /// [`CollectionPlan::cost_report`] under an explicit active union.
    fn cost_report_with(&self, active: PolicySet, announcements: &[Announcement]) -> CostReport {
        let origin_classes = distinct_classes(announcements, active);
        let accept_classes = distinct_accept_classes(announcements, active);
        let closure_sum: usize =
            self.vantages.iter().map(|&v| self.provider_closure_len(v)).sum();
        let forward_cost = origin_classes as f64;
        let reverse_cost = accept_classes as f64
            * (REVERSE_ITEM_BASE * self.vantages.len() as f64
                + REVERSE_ITEM_PER_CLOSURE * closure_sum as f64);
        let path_aware = active.reads_path();
        let chosen = if path_aware {
            CollectionStrategy::Forward
        } else {
            match self.strategy {
                CollectionStrategy::Auto => {
                    if reverse_cost < forward_cost {
                        CollectionStrategy::Reverse
                    } else {
                        CollectionStrategy::Forward
                    }
                }
                s => s,
            }
        };
        CostReport {
            vantages: self.vantages.len(),
            origin_classes,
            accept_classes,
            closure_sum,
            forward_cost,
            reverse_cost,
            path_aware,
            requested: self.strategy,
            chosen,
        }
    }

    /// [`CollectionPlan::resolved_strategy`] under an explicit active
    /// policy union.
    fn resolve_with(
        &self,
        active: PolicySet,
        announcements: &[Announcement],
    ) -> CollectionStrategy {
        self.cost_report_with(active, announcements).chosen
    }

    /// Size of `vantage`'s provider closure in the topology (the ASes
    /// reachable by repeatedly ascending provider edges, vantage
    /// included). The acceptance-aware closure the traversal actually
    /// builds can only be smaller, so this is a safe cost upper bound.
    /// Unknown vantages count as a closure of one.
    fn provider_closure_len(&self, vantage: Asn) -> usize {
        let mut closure: BTreeSet<Asn> = BTreeSet::new();
        closure.insert(vantage);
        let mut frontier = vec![vantage];
        while let Some(x) = frontier.pop() {
            for &p in self.topology.providers(x) {
                if closure.insert(p) {
                    frontier.push(p);
                }
            }
        }
        closure.len()
    }

    /// Propagates every announcement and collects the vantage view.
    pub fn collect(&self, announcements: &[Announcement]) -> CollectedRib {
        let graph = DenseGraph::build(self.topology, self.policies);
        self.collect_on(&graph, announcements)
    }

    /// Collects over a caller-supplied [`DenseGraph`], amortizing graph
    /// construction across many collections (Monte-Carlo sweep trials
    /// collect hundreds of overlay worlds over one base graph).
    ///
    /// Propagation and filtering read **the graph's** embedded policies,
    /// not this plan's `PolicyTable` — so a graph whose policies were
    /// overlaid via [`DenseGraph::set_policy`] collects exactly as a
    /// fresh build from the mutated table would. The graph must have
    /// been built from this plan's topology (dense indices must agree);
    /// `collect` is the safe shorthand that guarantees it.
    pub fn collect_on(&self, graph: &DenseGraph, announcements: &[Announcement]) -> CollectedRib {
        // The class machinery and the strategy resolution both key off
        // the union of policies actually installed in the graph, so
        // overlay mutations are honored and class widening matches what
        // deployed filters can observe.
        let active = graph.policy_union();

        // Serial pass: number the (origin, acceptance-class)
        // equivalence classes in first-appearance order, one
        // representative each.
        let mut memo: HashMap<(Asn, AcceptClass), usize> = HashMap::new();
        let mut reps: Vec<&Announcement> = Vec::new();
        let mut class_of: Vec<usize> = Vec::with_capacity(announcements.len());
        for ann in announcements {
            let key = (ann.origin, AcceptClass::of(ann, active));
            let next = reps.len();
            let idx = *memo.entry(key).or_insert_with(|| {
                reps.push(ann);
                next
            });
            class_of.push(idx);
        }

        // Resolve each vantage's dense index once (unknown vantages
        // simply never observe anything).
        let vantage_idx: Vec<usize> =
            self.vantages.iter().filter_map(|v| graph.index_of(*v)).collect();

        let strategy = self.resolve_with(active, announcements);
        let class_paths = match strategy {
            CollectionStrategy::Forward | CollectionStrategy::Auto => {
                self.collect_forward(graph, &reps, &vantage_idx)
            }
            CollectionStrategy::Reverse => {
                self.collect_reverse(graph, active, &reps, &vantage_idx)
            }
        };

        // Serial pass: intern each class's paths. Class order is the
        // serial discovery order, so PathIds are deterministic for any
        // thread count and identical across strategies.
        let mut interner = PathInterner::new();
        let class_ids: Vec<Vec<PathId>> = class_paths
            .iter()
            .map(|paths| paths.iter().map(|p| interner.intern(p)).collect())
            .collect();

        // Every announcement in a class shares the class's ids; the
        // per-announcement cost is a Vec<u32> clone.
        let observations = announcements
            .iter()
            .zip(&class_of)
            .map(|(ann, &class)| Observation {
                prefix: ann.prefix,
                origin: ann.origin,
                rpki: ann.rpki,
                irr: ann.irr,
                paths: class_ids[class].clone(),
            })
            .collect();

        CollectedRib::from_parts(self.vantages.to_vec(), observations, interner.into_pool())
    }

    /// Forward fan-out: one propagation per class, each worker reusing
    /// its own scratch and extracting only the vantage paths — the full
    /// routing outcome dies with the scratch.
    fn collect_forward(
        &self,
        graph: &DenseGraph,
        reps: &[&Announcement],
        vantage_idx: &[usize],
    ) -> Vec<Vec<Vec<Asn>>> {
        par_map_with(
            &self.parallel,
            reps,
            || PropagationScratch::with_capacity(graph.len()),
            |scratch, ann| {
                propagate_dense_into(graph, ann, scratch);
                vantage_idx
                    .iter()
                    .filter_map(|&i| scratch.as_path_at(graph, i))
                    .collect()
            },
        )
    }

    /// Reverse fan-out: filter classes collapse further into
    /// *acceptance classes* (what filters can observe, origin aside —
    /// at most six), one backward traversal runs per (acceptance class,
    /// vantage), and each filter class reads its origin's row out of
    /// its acceptance class's traversals. Each worker keeps one
    /// [`ReverseScratch`] and extracts only the origin rows its work
    /// item's classes need, so the traversal state never outlives the
    /// work item and steady-state collection is allocation-free apart
    /// from the returned paths. The stitch below iterates classes and
    /// vantages in exactly the forward extraction order, so interned
    /// ids come out identical.
    fn collect_reverse(
        &self,
        graph: &DenseGraph,
        active: PolicySet,
        reps: &[&Announcement],
        vantage_idx: &[usize],
    ) -> Vec<Vec<Vec<Asn>>> {
        let mut amemo: HashMap<AcceptClass, usize> = HashMap::new();
        let mut areps: Vec<&Announcement> = Vec::new();
        // Per accept class: member rep indices (rep order) and their
        // dense origin indices; per rep: its position in its class.
        let mut class_members: Vec<Vec<usize>> = Vec::new();
        let mut class_origins: Vec<Vec<Option<usize>>> = Vec::new();
        let mut accept_of: Vec<usize> = Vec::with_capacity(reps.len());
        let mut member_pos: Vec<usize> = Vec::with_capacity(reps.len());
        for (r, &rep) in reps.iter().enumerate() {
            let next = areps.len();
            let a = *amemo.entry(AcceptClass::of(rep, active)).or_insert_with(|| {
                areps.push(rep);
                class_members.push(Vec::new());
                class_origins.push(Vec::new());
                next
            });
            accept_of.push(a);
            member_pos.push(class_members[a].len());
            class_members[a].push(r);
            // Unknown origin: forward propagation reaches nobody.
            class_origins[a].push(graph.index_of(rep.origin));
        }

        let nv = vantage_idx.len();
        let work: Vec<(usize, usize)> = (0..areps.len())
            .flat_map(|a| (0..nv).map(move |p| (a, p)))
            .collect();
        let mut results: Vec<Vec<Option<Vec<Asn>>>> = par_map_with(
            &self.parallel,
            &work,
            ReverseScratch::new,
            |scratch, &(a, p)| {
                scratch.traverse(graph, areps[a], vantage_idx[p]);
                class_origins[a]
                    .iter()
                    .map(|o| o.and_then(|o| scratch.path_to(graph, o)))
                    .collect()
            },
        );

        reps.iter()
            .zip(&accept_of)
            .zip(&member_pos)
            .map(|((_, &a), &m)| {
                (0..nv)
                    .filter_map(|p| results[a * nv + p][m].take())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyExtension;
    use crate::testutil::wide_topo;
    use manrs_irr::IrrStatus;
    use manrs_net::Prefix;
    use manrs_rpki::RpkiStatus;

    /// 1 -> 2 -> {3, 4}; 1 is the vantage's home.
    fn topo() -> AsTopology {
        crate::testutil::topo(4, &[(1, 2), (2, 3), (2, 4)], &[])
    }

    fn ann(prefix: &str, origin: u32, rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
        Announcement::new(prefix.parse::<Prefix>().unwrap(), Asn(origin), rpki, irr)
    }

    #[test]
    fn collects_all_announcements_in_order() {
        let t = topo();
        let anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.2.0.0/16", 4, RpkiStatus::NotFound, IrrStatus::NotFound),
        ];
        let rib = TableCollector::new(&t, &PolicyTable::default(), &[Asn(1)]).collect(&anns);
        assert_eq!(rib.observations.len(), 3);
        assert_eq!(rib.observations[0].prefix, anns[0].prefix);
        assert_eq!(rib.observations[2].origin, Asn(4));
        assert_eq!(rib.visible_count(), 3);
        // Shared origin and class: identical paths.
        assert_eq!(rib.observations[0].paths, rib.observations[1].paths);
    }

    #[test]
    fn memoization_does_not_conflate_classes() {
        let t = topo();
        let mut policies = PolicyTable::default();
        policies.set(Asn(2), PolicySet::OPEN.with(PolicyExtension::Rov));
        let anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 3, RpkiStatus::InvalidAsn, IrrStatus::Valid),
        ];
        let rib = TableCollector::new(&t, &policies, &[Asn(1)]).collect(&anns);
        // Valid one is seen, invalid one blocked at AS2.
        assert!(rib.observations[0].is_visible());
        assert!(!rib.observations[1].is_visible());
    }

    #[test]
    fn vantage_order_and_identity_preserved() {
        let t = topo();
        let anns = vec![ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid)];
        let rib = TableCollector::new(&t, &PolicyTable::default(), &[Asn(1), Asn(4)]).collect(&anns);
        assert_eq!(rib.vantages, vec![Asn(1), Asn(4)]);
        // Both vantages see it (4 via provider route).
        assert_eq!(rib.observations[0].paths.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let t = topo();
        let rib = TableCollector::new(&t, &PolicyTable::default(), &[Asn(1)]).collect(&[]);
        assert_eq!(rib.observations.len(), 0);
        assert_eq!(rib.visible_count(), 0);
    }

    #[test]
    fn auto_strategy_resolution_tracks_counts() {
        let t = topo();
        // A deployed MANRS posture keeps both class dimensions live;
        // an all-open table would collapse every status to one class.
        let policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 4, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.2.0.0/16", 4, RpkiStatus::InvalidAsn, IrrStatus::Valid),
        ];
        assert_eq!(distinct_classes(&anns, policies.active_union()), 3);
        assert_eq!(distinct_classes(&anns, PolicySet::OPEN), 2, "open union collapses statuses");
        let one = [Asn(1)];
        let plan = TableCollector::new(&t, &policies, &one).plan();
        assert_eq!(plan.resolved_strategy(&anns), CollectionStrategy::Reverse);
        let four = [Asn(1), Asn(2), Asn(3), Asn(4)];
        let plan = TableCollector::new(&t, &policies, &four).plan();
        assert_eq!(plan.resolved_strategy(&anns), CollectionStrategy::Forward);
        assert_eq!(
            plan.strategy(CollectionStrategy::Reverse).resolved_strategy(&anns),
            CollectionStrategy::Reverse
        );
    }

    #[test]
    fn auto_cost_model_crossover() {
        // Vantage AS1 has no providers: closure = {1}, so one reverse
        // work item costs BASE + PER_CLOSURE = 1.3 units, and with two
        // acceptance classes reverse totals 2.6. Two filter classes
        // (forward = 2) sit below that — Forward; a third filter class
        // in an existing acceptance class (forward = 3, reverse still
        // 2.6) tips it over — Reverse.
        let t = topo();
        let policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let active = policies.active_union();
        let one = [Asn(1)];
        let plan = TableCollector::new(&t, &policies, &one).plan();
        let mut anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 3, RpkiStatus::InvalidAsn, IrrStatus::Valid),
        ];
        assert_eq!(distinct_classes(&anns, active), 2);
        assert_eq!(distinct_accept_classes(&anns, active), 2);
        assert_eq!(plan.resolved_strategy(&anns), CollectionStrategy::Forward);
        // Same statuses from a different origin: new filter class,
        // same acceptance class.
        anns.push(ann("10.2.0.0/16", 4, RpkiStatus::Valid, IrrStatus::Valid));
        assert_eq!(distinct_classes(&anns, active), 3);
        assert_eq!(distinct_accept_classes(&anns, active), 2);
        assert_eq!(plan.resolved_strategy(&anns), CollectionStrategy::Reverse);
    }

    #[test]
    fn path_aware_mix_forces_forward() {
        let t = topo();
        let mut policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 3, RpkiStatus::InvalidAsn, IrrStatus::Valid),
            ann("10.2.0.0/16", 4, RpkiStatus::Valid, IrrStatus::Valid),
        ];
        let one = [Asn(1)];
        // Path-blind baseline: this shape resolves to Reverse (see
        // auto_cost_model_crossover).
        let plan = TableCollector::new(&t, &policies, &one).plan();
        assert_eq!(plan.resolved_strategy(&anns), CollectionStrategy::Reverse);
        // One AS deploying a path-aware extension anywhere flips every
        // strategy — explicit Reverse included — to Forward.
        policies.set(Asn(4), PolicySet::OPEN.with(PolicyExtension::OnlyToCustomers));
        for ext in [
            PolicyExtension::Aspa,
            PolicyExtension::OnlyToCustomers,
            PolicyExtension::PathEnd,
        ] {
            policies.set(Asn(4), PolicySet::OPEN.with(ext));
            let plan = TableCollector::new(&t, &policies, &one).plan();
            assert_eq!(plan.resolved_strategy(&anns), CollectionStrategy::Forward, "{ext:?}");
            assert_eq!(
                plan.strategy(CollectionStrategy::Reverse).resolved_strategy(&anns),
                CollectionStrategy::Forward,
                "explicit Reverse must fall back under {ext:?}"
            );
        }
        // Collection still works (and is well-defined) under the
        // path-aware mix.
        let rib = TableCollector::new(&t, &policies, &one).collect(&anns);
        assert_eq!(rib.observations.len(), 3);
    }

    #[test]
    fn cost_report_is_the_resolution() {
        let t = topo();
        let policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 3, RpkiStatus::InvalidAsn, IrrStatus::Valid),
            ann("10.2.0.0/16", 4, RpkiStatus::Valid, IrrStatus::Valid),
        ];
        let one = [Asn(1)];
        let plan = TableCollector::new(&t, &policies, &one).plan();
        let report = plan.cost_report(&anns);
        assert_eq!(report.vantages, 1);
        assert_eq!(report.origin_classes, 3);
        assert_eq!(report.accept_classes, 2);
        assert_eq!(report.closure_sum, 1, "AS1 has no providers");
        assert!((report.forward_cost - 3.0).abs() < 1e-12);
        // 2 accept classes × (0.55 + 0.75 × 1) = 2.6.
        assert!((report.reverse_cost - 2.6).abs() < 1e-12);
        assert!(!report.path_aware);
        assert_eq!(report.requested, CollectionStrategy::Auto);
        assert_eq!(report.chosen, CollectionStrategy::Reverse);
        assert_eq!(report.chosen, plan.resolved_strategy(&anns));
        // Path-aware deployment: both costs still reported, forward
        // forced regardless of the requested strategy.
        let mut aware = PolicyTable::with_default(PolicySet::MANRS_ISP);
        aware.set(Asn(4), PolicySet::OPEN.with(PolicyExtension::Aspa));
        let plan = TableCollector::new(&t, &aware, &one).plan().strategy(CollectionStrategy::Reverse);
        let report = plan.cost_report(&anns);
        assert!(report.path_aware);
        assert_eq!(report.requested, CollectionStrategy::Reverse);
        assert_eq!(report.chosen, CollectionStrategy::Forward);
    }

    #[test]
    fn vantage_set_overrides_population_and_flips_auto() {
        let t = topo();
        let policies = PolicyTable::with_default(PolicySet::MANRS_ISP);
        let anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 3, RpkiStatus::InvalidAsn, IrrStatus::Valid),
            ann("10.2.0.0/16", 4, RpkiStatus::Valid, IrrStatus::Valid),
        ];
        let four = [Asn(1), Asn(2), Asn(3), Asn(4)];
        let collector = TableCollector::new(&t, &policies, &four);
        assert_eq!(
            collector.plan().resolved_strategy(&anns),
            CollectionStrategy::Forward,
            "full population: reverse too expensive"
        );
        let selected = VantageSet::new(vec![Asn(1)]);
        let plan = collector.plan().vantage_set(&selected);
        assert_eq!(plan.cost_report(&anns).vantages, 1);
        assert_eq!(
            plan.resolved_strategy(&anns),
            CollectionStrategy::Reverse,
            "selected set flips Auto to reverse"
        );
    }

    /// Collecting on a vantage subset equals projecting the
    /// full-vantage RIB onto it: per-vantage paths are independent, so
    /// the subset RIB's path lists are the full RIB's filtered to the
    /// subset's vantages.
    #[test]
    fn vantage_subset_collection_matches_projection() {
        let t = wide_topo(160);
        let mut policies = PolicyTable::default();
        for asn in (2u32..=160).step_by(7) {
            policies.set(Asn(asn), PolicySet::OPEN.with(PolicyExtension::Rov));
        }
        let statuses = [
            (RpkiStatus::Valid, IrrStatus::Valid),
            (RpkiStatus::InvalidAsn, IrrStatus::Valid),
            (RpkiStatus::NotFound, IrrStatus::NotFound),
        ];
        let anns: Vec<Announcement> = (0..90u32)
            .map(|i| {
                let (rpki, irr) = statuses[(i % 3) as usize];
                ann(&format!("10.{}.{}.0/24", i / 256, i % 256), 1 + (i * 3) % 160, rpki, irr)
            })
            .collect();
        let vantages = [Asn(1), Asn(2), Asn(15), Asn(80), Asn(160)];
        let collector = TableCollector::new(&t, &policies, &vantages)
            .parallel(ParallelConfig::serial());
        let full = collector.collect(&anns);
        // Subset in original vantage order.
        let subset = VantageSet::new(vec![Asn(2), Asn(80)]);
        let sub = collector.plan().vantage_set(&subset).collect(&anns);
        assert_eq!(sub.vantages, subset.vantages());
        assert_eq!(sub.observations.len(), full.observations.len());
        for (so, fo) in sub.observations.iter().zip(&full.observations) {
            let projected: Vec<Vec<Asn>> = full
                .materialize_paths(fo)
                .into_iter()
                .filter(|p| subset.contains(p[0]))
                .collect();
            assert_eq!(sub.materialize_paths(so), projected, "{:?}", so.prefix);
        }
    }

    #[test]
    fn strategies_agree_bit_for_bit() {
        let t = wide_topo(160);
        let mut policies = PolicyTable::default();
        for asn in (2u32..=160).step_by(7) {
            policies.set(Asn(asn), PolicySet::OPEN.with(PolicyExtension::Rov));
        }
        for asn in (5u32..=160).step_by(9) {
            policies.set(Asn(asn), PolicySet::OPEN.with(PolicyExtension::IrrCustomer));
        }
        for asn in (11u32..=160).step_by(23) {
            policies.set(Asn(asn), PolicySet::ROUTE_SERVER);
        }
        let statuses = [
            (RpkiStatus::Valid, IrrStatus::Valid),
            (RpkiStatus::InvalidAsn, IrrStatus::Valid),
            (RpkiStatus::NotFound, IrrStatus::InvalidAsn),
            (RpkiStatus::InvalidLength, IrrStatus::InvalidLength),
        ];
        let anns: Vec<Announcement> = (0..120u32)
            .map(|i| {
                let (rpki, irr) = statuses[(i % 4) as usize];
                ann(&format!("10.{}.{}.0/24", i / 256, i % 256), 1 + (i * 3) % 160, rpki, irr)
            })
            .collect();
        let vantages = [Asn(1), Asn(2), Asn(15), Asn(80), Asn(160), Asn(999)];
        let collector = TableCollector::new(&t, &policies, &vantages)
            .parallel(ParallelConfig::serial());
        let forward = collector.plan().strategy(CollectionStrategy::Forward).collect(&anns);
        let reverse = collector.plan().strategy(CollectionStrategy::Reverse).collect(&anns);
        assert_eq!(forward.vantages, reverse.vantages);
        assert_eq!(forward.observations, reverse.observations);
        assert_eq!(forward.pool(), reverse.pool());
        assert_eq!(forward.visible_count(), reverse.visible_count());
    }

    #[test]
    fn parallel_collection_is_deterministic() {
        let t = wide_topo(160);
        let mut policies = PolicyTable::default();
        for asn in (2u32..=160).step_by(7) {
            policies.set(Asn(asn), PolicySet::OPEN.with(PolicyExtension::Rov));
        }
        let statuses = [
            (RpkiStatus::Valid, IrrStatus::Valid),
            (RpkiStatus::InvalidAsn, IrrStatus::Valid),
            (RpkiStatus::NotFound, IrrStatus::InvalidAsn),
            (RpkiStatus::NotFound, IrrStatus::NotFound),
        ];
        let anns: Vec<Announcement> = (0..200u32)
            .map(|i| {
                let (rpki, irr) = statuses[(i % 4) as usize];
                ann(&format!("10.{}.{}.0/24", i / 256, i % 256), 1 + (i * 3) % 160, rpki, irr)
            })
            .collect();
        let vantages = [Asn(1), Asn(2), Asn(15), Asn(80), Asn(160)];

        let collector = TableCollector::new(&t, &policies, &vantages);
        for strategy in [
            CollectionStrategy::Forward,
            CollectionStrategy::Reverse,
            CollectionStrategy::Auto,
        ] {
            let serial = collector
                .plan()
                .parallel(ParallelConfig::serial())
                .strategy(strategy)
                .collect(&anns);
            for threads in [2, 4, 8] {
                let parallel = collector
                    .plan()
                    .parallel(ParallelConfig::with_threads(threads))
                    .strategy(strategy)
                    .collect(&anns);
                assert_eq!(parallel.vantages, serial.vantages, "{strategy:?} threads={threads}");
                assert_eq!(
                    parallel.observations, serial.observations,
                    "{strategy:?} threads={threads}"
                );
                assert_eq!(parallel.pool(), serial.pool(), "{strategy:?} threads={threads}");
                assert_eq!(
                    parallel.visible_count(),
                    serial.visible_count(),
                    "{strategy:?} threads={threads}"
                );
            }
        }
    }
}
