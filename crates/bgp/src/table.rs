//! Whole-table collection with per-(origin, filter-class) memoization.
//!
//! Propagating every (prefix, origin) pair independently would repeat
//! identical work: the routing outcome depends only on the origin and on
//! how filters react to the announcement's registry statuses. Policies
//! consult exactly (a) whether ROV drops it and (b) its IRR status, so
//! announcements from the same origin fall into a handful of equivalence
//! classes; one propagation per class serves every prefix in it.

use crate::announcement::Announcement;
use crate::collector::{CollectedRib, Observation};
use crate::parallel::{par_map_with, ParallelConfig};
use crate::pathpool::{PathId, PathInterner};
use crate::policy::PolicyTable;
use crate::propagate::{propagate_dense_into, DenseGraph, PropagationScratch};
use manrs_irr::IrrStatus;
use manrs_net::Asn;
use manrs_topology::AsTopology;
use std::collections::HashMap;

/// The projection of an announcement that filtering can observe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FilterClass {
    rov_dropped: bool,
    irr: IrrStatus,
}

impl FilterClass {
    fn of(a: &Announcement) -> Self {
        FilterClass { rov_dropped: a.rpki.dropped_by_rov(), irr: a.irr }
    }
}

/// Builder-style entry point for whole-table collection: fix the
/// topology, policies, and vantage points once, optionally override the
/// parallelism, then collect one or more announcement sets.
///
/// ```
/// # use manrs_bgp::{TableCollector, PolicyTable, ParallelConfig};
/// # use manrs_topology::AsTopology;
/// # let topology = AsTopology::new();
/// # let policies = PolicyTable::default();
/// # let vantages: Vec<manrs_net::Asn> = Vec::new();
/// let rib = TableCollector::new(&topology, &policies, &vantages)
///     .parallel(ParallelConfig::serial())
///     .collect(&[]);
/// # assert_eq!(rib.observations.len(), 0);
/// ```
///
/// Announcement order is preserved in the output. Memoization is per
/// (origin, filter class); with the four RPKI × four IRR statuses there
/// are at most eight classes per origin, and real mixes produce one or
/// two. The expensive per-class propagations fan out across worker
/// threads (each reusing one [`PropagationScratch`]); each worker
/// extracts only the vantage paths of its class — no per-class
/// `RoutingOutcome` clone, no per-announcement path walk. Classes are
/// discovered and numbered serially in announcement order, paths are
/// interned serially in class order, and every announcement in a class
/// references the class's [`PathId`]s, so the output (ids included) is
/// bit-for-bit identical for any thread count — including
/// [`ParallelConfig::serial`].
#[derive(Debug, Clone)]
pub struct TableCollector<'a> {
    topology: &'a AsTopology,
    policies: &'a PolicyTable,
    vantages: &'a [Asn],
    parallel: ParallelConfig,
}

impl<'a> TableCollector<'a> {
    /// Creates a collector with the thread count taken from
    /// `MANRS_THREADS` (auto-detected when unset).
    pub fn new(topology: &'a AsTopology, policies: &'a PolicyTable, vantages: &'a [Asn]) -> Self {
        TableCollector { topology, policies, vantages, parallel: ParallelConfig::from_env() }
    }

    /// Overrides the parallelism configuration.
    pub fn parallel(mut self, cfg: ParallelConfig) -> Self {
        self.parallel = cfg;
        self
    }

    /// Propagates every announcement and collects the vantage view.
    pub fn collect(&self, announcements: &[Announcement]) -> CollectedRib {
        let cfg = &self.parallel;
        let graph = DenseGraph::build(self.topology, self.policies);

        // Serial pass: number the (origin, filter-class) equivalence
        // classes in first-appearance order, one representative each.
        let mut memo: HashMap<(Asn, FilterClass), usize> = HashMap::new();
        let mut reps: Vec<&Announcement> = Vec::new();
        let mut class_of: Vec<usize> = Vec::with_capacity(announcements.len());
        for ann in announcements {
            let key = (ann.origin, FilterClass::of(ann));
            let next = reps.len();
            let idx = *memo.entry(key).or_insert_with(|| {
                reps.push(ann);
                next
            });
            class_of.push(idx);
        }

        // Resolve each vantage's dense index once (unknown vantages
        // simply never observe anything).
        let vantage_idx: Vec<usize> =
            self.vantages.iter().filter_map(|v| graph.index_of(*v)).collect();

        // Parallel pass: one propagation per class, each worker reusing
        // its own scratch and extracting only the vantage paths — the
        // full routing outcome dies with the scratch.
        let class_paths: Vec<Vec<Vec<Asn>>> = par_map_with(
            cfg,
            &reps,
            || PropagationScratch::with_capacity(graph.len()),
            |scratch, ann| {
                propagate_dense_into(&graph, ann, scratch);
                vantage_idx
                    .iter()
                    .filter_map(|&i| scratch.as_path_at(&graph, i))
                    .collect()
            },
        );

        // Serial pass: intern each class's paths. Class order is the
        // serial discovery order, so PathIds are deterministic for any
        // thread count.
        let mut interner = PathInterner::new();
        let class_ids: Vec<Vec<PathId>> = class_paths
            .iter()
            .map(|paths| paths.iter().map(|p| interner.intern(p)).collect())
            .collect();

        // Every announcement in a class shares the class's ids; the
        // per-announcement cost is a Vec<u32> clone.
        let observations = announcements
            .iter()
            .zip(&class_of)
            .map(|(ann, &class)| Observation {
                prefix: ann.prefix,
                origin: ann.origin,
                rpki: ann.rpki,
                irr: ann.irr,
                paths: class_ids[class].clone(),
            })
            .collect();

        CollectedRib::from_parts(self.vantages.to_vec(), observations, interner.into_pool())
    }
}

/// Propagates every announcement and collects the vantage view, using
/// the thread count from `MANRS_THREADS` (auto-detected when unset).
#[deprecated(since = "0.2.0", note = "use `TableCollector::new(...).collect(...)`")]
pub fn collect_table(
    topology: &AsTopology,
    policies: &PolicyTable,
    announcements: &[Announcement],
    vantages: &[Asn],
) -> CollectedRib {
    TableCollector::new(topology, policies, vantages).collect(announcements)
}

/// [`collect_table`] with an explicit parallelism configuration.
#[deprecated(
    since = "0.2.0",
    note = "use `TableCollector::new(...).parallel(cfg).collect(...)`"
)]
pub fn collect_table_with(
    topology: &AsTopology,
    policies: &PolicyTable,
    announcements: &[Announcement],
    vantages: &[Asn],
    cfg: &ParallelConfig,
) -> CollectedRib {
    TableCollector::new(topology, policies, vantages).parallel(*cfg).collect(announcements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::FilteringPolicy;
    use crate::testutil::wide_topo;
    use manrs_net::Prefix;
    use manrs_rpki::RpkiStatus;

    /// 1 -> 2 -> {3, 4}; 1 is the vantage's home.
    fn topo() -> AsTopology {
        crate::testutil::topo(4, &[(1, 2), (2, 3), (2, 4)], &[])
    }

    fn ann(prefix: &str, origin: u32, rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
        Announcement::new(prefix.parse::<Prefix>().unwrap(), Asn(origin), rpki, irr)
    }

    #[test]
    fn collects_all_announcements_in_order() {
        let t = topo();
        let anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.2.0.0/16", 4, RpkiStatus::NotFound, IrrStatus::NotFound),
        ];
        let rib = TableCollector::new(&t, &PolicyTable::default(), &[Asn(1)]).collect(&anns);
        assert_eq!(rib.observations.len(), 3);
        assert_eq!(rib.observations[0].prefix, anns[0].prefix);
        assert_eq!(rib.observations[2].origin, Asn(4));
        assert_eq!(rib.visible_count(), 3);
        // Shared origin and class: identical paths.
        assert_eq!(rib.observations[0].paths, rib.observations[1].paths);
    }

    #[test]
    fn memoization_does_not_conflate_classes() {
        let t = topo();
        let mut policies = PolicyTable::default();
        policies.set(Asn(2), FilteringPolicy { rov: true, ..FilteringPolicy::OPEN });
        let anns = vec![
            ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid),
            ann("10.1.0.0/16", 3, RpkiStatus::InvalidAsn, IrrStatus::Valid),
        ];
        let rib = TableCollector::new(&t, &policies, &[Asn(1)]).collect(&anns);
        // Valid one is seen, invalid one blocked at AS2.
        assert!(rib.observations[0].is_visible());
        assert!(!rib.observations[1].is_visible());
    }

    #[test]
    fn vantage_order_and_identity_preserved() {
        let t = topo();
        let anns = vec![ann("10.0.0.0/16", 3, RpkiStatus::Valid, IrrStatus::Valid)];
        let rib = TableCollector::new(&t, &PolicyTable::default(), &[Asn(1), Asn(4)]).collect(&anns);
        assert_eq!(rib.vantages, vec![Asn(1), Asn(4)]);
        // Both vantages see it (4 via provider route).
        assert_eq!(rib.observations[0].paths.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        let t = topo();
        let rib = TableCollector::new(&t, &PolicyTable::default(), &[Asn(1)]).collect(&[]);
        assert_eq!(rib.observations.len(), 0);
        assert_eq!(rib.visible_count(), 0);
    }

    #[test]
    fn parallel_collection_is_deterministic() {
        let t = wide_topo(160);
        let mut policies = PolicyTable::default();
        for asn in (2u32..=160).step_by(7) {
            policies.set(Asn(asn), FilteringPolicy { rov: true, ..FilteringPolicy::OPEN });
        }
        let statuses = [
            (RpkiStatus::Valid, IrrStatus::Valid),
            (RpkiStatus::InvalidAsn, IrrStatus::Valid),
            (RpkiStatus::NotFound, IrrStatus::InvalidAsn),
            (RpkiStatus::NotFound, IrrStatus::NotFound),
        ];
        let anns: Vec<Announcement> = (0..200u32)
            .map(|i| {
                let (rpki, irr) = statuses[(i % 4) as usize];
                ann(&format!("10.{}.{}.0/24", i / 256, i % 256), 1 + (i * 3) % 160, rpki, irr)
            })
            .collect();
        let vantages = [Asn(1), Asn(2), Asn(15), Asn(80), Asn(160)];

        let collector = TableCollector::new(&t, &policies, &vantages);
        let serial = collector.clone().parallel(ParallelConfig::serial()).collect(&anns);
        for threads in [2, 4, 8] {
            let parallel = collector
                .clone()
                .parallel(ParallelConfig::with_threads(threads))
                .collect(&anns);
            assert_eq!(parallel.vantages, serial.vantages, "threads={threads}");
            assert_eq!(parallel.observations, serial.observations, "threads={threads}");
            assert_eq!(parallel.pool(), serial.pool(), "threads={threads}");
            assert_eq!(parallel.visible_count(), serial.visible_count(), "threads={threads}");
        }
    }
}
