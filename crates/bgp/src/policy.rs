//! Composable per-AS import-policy extensions.
//!
//! The paper's measurement (§9) models two mechanisms — Route Origin
//! Validation and IRR-based customer/peer filtering — but the ecosystem
//! it measures is a zoo of interacting policies: route servers
//! validating on behalf of IXP members, RFC 9234 roles, ASPA-style
//! provider verification. This module expresses all of them as one
//! registry of [`PolicyExtension`]s; an AS's policy is a [`PolicySet`]
//! (a bitset over the registry) and its import decision is the
//! **conjunction** of the verdicts of every extension in the set.
//!
//! Extensions split into two families:
//!
//! * **Path-blind** extensions ([`PolicyExtension::reads_path`] is
//!   `false`) decide from the announcement's registry statuses alone:
//!   ROV, IRR customer/peer filtering, the strict-length modifier, and
//!   the IXP route-server posture. Whole-table collection exploits this
//!   blindness: announcements with equal status projections share one
//!   propagation, and reverse collection is legal.
//! * **Path-aware** extensions decide from *how the route travelled*:
//!   ASPA-style provider verification, RFC 9234 only-to-customers leak
//!   rejection, and path-end validation. Their verdicts consult
//!   [`RouteAttrs`]; any path-aware extension active in a graph forces
//!   forward collection (see `crate::table`).
//!
//! In plain valley-free propagation the path-aware verdicts are
//! vacuous: a route exported upward or laterally always has a clean
//! customer descent, carries no OTC mark from the receiver's
//! perspective, and ends at a genuine origin adjacency — so
//! [`PolicySet::accepts`] (the path-blind conjunction) is the whole
//! import decision. They bite exactly when a route is *leaked*
//! ([`crate::propagate::propagate_leak_into`]), where the wave carries
//! [`RouteAttrs::LEAKED`].

use crate::announcement::Announcement;
use manrs_irr::IrrStatus;
use manrs_net::Asn;
use manrs_topology::Relationship;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One composable import-filtering behaviour.
///
/// The discriminant is the extension's bit position in a
/// [`PolicySet`]; the registry is append-only so serialized sets stay
/// stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u16)]
pub enum PolicyExtension {
    /// Drop RPKI-Invalid (either kind) announcements from any neighbor
    /// (RFC 6811 deployment; §9.1).
    Rov,
    /// Drop IRR-Invalid announcements learned from customers — MANRS
    /// Action 1's "check the validity of customer announcements" (§9.2).
    IrrCustomer,
    /// Extend IRR filtering to announcements learned from peers (the
    /// CDN ingress-filtering posture).
    IrrPeer,
    /// Modifier: also treat IRR Invalid-length as filterable wherever
    /// IRR filtering applies. The paper deliberately does *not* (§3);
    /// on its own this extension filters nothing.
    IrrStrictLength,
    /// IXP route-server posture: the party validates on behalf of its
    /// members and drops RPKI-Invalid or IRR Invalid-ASN announcements
    /// from *any* relationship — members inherit filtering they never
    /// deployed themselves.
    RouteServer,
    /// ASPA-style provider verification: a route learned from a
    /// customer or lateral peer must descend an unbroken customer chain
    /// to its origin. Path-aware.
    Aspa,
    /// RFC 9234 only-to-customers: reject a route carrying the OTC mark
    /// when it arrives from a customer or lateral peer — the canonical
    /// route-leak rejection. Path-aware.
    OnlyToCustomers,
    /// Path-end validation: the hop adjacent to the origin must be a
    /// genuine topology neighbor of the origin. Path-aware.
    PathEnd,
}

impl PolicyExtension {
    /// Every extension, in bit order.
    pub const ALL: [PolicyExtension; 8] = [
        PolicyExtension::Rov,
        PolicyExtension::IrrCustomer,
        PolicyExtension::IrrPeer,
        PolicyExtension::IrrStrictLength,
        PolicyExtension::RouteServer,
        PolicyExtension::Aspa,
        PolicyExtension::OnlyToCustomers,
        PolicyExtension::PathEnd,
    ];

    /// This extension's bit in a [`PolicySet`].
    pub const fn bit(self) -> u16 {
        1 << (self as u16)
    }

    /// Whether this extension's verdict consults [`RouteAttrs`] (how
    /// the route travelled) rather than the announcement's registry
    /// statuses alone.
    ///
    /// This is the contract the collection layer builds on: the
    /// acceptance-class memoization and the reverse strategy are only
    /// valid when every active extension is path-blind, so a `true`
    /// here forces forward collection.
    pub const fn reads_path(self) -> bool {
        matches!(
            self,
            PolicyExtension::Aspa | PolicyExtension::OnlyToCustomers | PolicyExtension::PathEnd
        )
    }

    /// Stable lowercase name (used in reports and bench records).
    pub const fn name(self) -> &'static str {
        match self {
            PolicyExtension::Rov => "rov",
            PolicyExtension::IrrCustomer => "irr_customer",
            PolicyExtension::IrrPeer => "irr_peer",
            PolicyExtension::IrrStrictLength => "irr_strict_length",
            PolicyExtension::RouteServer => "route_server",
            PolicyExtension::Aspa => "aspa",
            PolicyExtension::OnlyToCustomers => "only_to_customers",
            PolicyExtension::PathEnd => "path_end",
        }
    }
}

/// The route-travel facts a path-aware extension may consult, derived
/// from the sender's selected route at import time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteAttrs {
    /// The route carries the RFC 9234 Only-to-Customer mark: somewhere
    /// upstream it crossed a provider→customer or lateral peer edge.
    pub otc_marked: bool,
    /// The sender's chain to the origin is an unbroken customer/origin
    /// descent (what ASPA's provider verification certifies).
    pub customer_descent: bool,
    /// The hop adjacent to the origin is a genuine topology neighbor of
    /// the origin (what path-end validation certifies).
    pub origin_adjacent: bool,
}

impl RouteAttrs {
    /// A route produced by plain valley-free export: no OTC mark from
    /// the receiver's perspective, clean customer descent, genuine
    /// origin adjacency. Every path-aware verdict passes.
    pub const CLEAN: RouteAttrs =
        RouteAttrs { otc_marked: false, customer_descent: true, origin_adjacent: true };

    /// A route re-exported beyond its valley-free envelope (a leak
    /// wave): OTC-marked, with the leaker's provider/peer hop breaking
    /// the customer descent. The origin adjacency is real — leaks carry
    /// genuine paths.
    pub const LEAKED: RouteAttrs =
        RouteAttrs { otc_marked: true, customer_descent: false, origin_adjacent: true };
}

/// One AS's import policy: a set of [`PolicyExtension`]s whose
/// conjunction is the import decision.
///
/// The empty set accepts everything (the common case in the wild).
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PolicySet(u16);

impl PolicySet {
    /// A network doing nothing — no extensions, accept everything.
    pub const OPEN: PolicySet = PolicySet(0);

    /// The full MANRS Action 1 posture for an ISP: ROV plus IRR
    /// customer filtering.
    pub const MANRS_ISP: PolicySet =
        PolicySet(PolicyExtension::Rov.bit() | PolicyExtension::IrrCustomer.bit());

    /// The CDN posture: ingress filtering on peers as well.
    pub const MANRS_CDN: PolicySet = PolicySet(
        PolicyExtension::Rov.bit()
            | PolicyExtension::IrrCustomer.bit()
            | PolicyExtension::IrrPeer.bit(),
    );

    /// The IXP route-server posture: validate on behalf of members.
    pub const ROUTE_SERVER: PolicySet = PolicySet(PolicyExtension::RouteServer.bit());

    /// The empty set.
    pub const fn new() -> Self {
        PolicySet(0)
    }

    /// The set containing exactly the given extensions.
    pub fn of(extensions: &[PolicyExtension]) -> Self {
        extensions.iter().fold(PolicySet(0), |s, &e| s.with(e))
    }

    /// This set plus one extension.
    pub const fn with(self, extension: PolicyExtension) -> Self {
        PolicySet(self.0 | extension.bit())
    }

    /// This set minus one extension.
    pub const fn without(self, extension: PolicyExtension) -> Self {
        PolicySet(self.0 & !extension.bit())
    }

    /// Whether the extension is in the set.
    pub const fn contains(self, extension: PolicyExtension) -> bool {
        self.0 & extension.bit() != 0
    }

    /// Set union — deployment composes by turning extensions on.
    pub const fn union(self, other: PolicySet) -> Self {
        PolicySet(self.0 | other.0)
    }

    /// `true` if no extension is active.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of active extensions.
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether any active extension is path-aware — the signal the
    /// collection layer uses to force forward collection.
    pub const fn reads_path(self) -> bool {
        self.0
            & (PolicyExtension::Aspa.bit()
                | PolicyExtension::OnlyToCustomers.bit()
                | PolicyExtension::PathEnd.bit())
            != 0
    }

    /// The active extensions, in bit order.
    pub fn iter(self) -> impl Iterator<Item = PolicyExtension> {
        PolicyExtension::ALL.into_iter().filter(move |e| self.contains(*e))
    }

    /// Whether `irr` counts as invalid under this set's IRR rules:
    /// Invalid-ASN always, Invalid-length only with the strict-length
    /// modifier.
    fn irr_invalid(self, irr: IrrStatus) -> bool {
        irr == IrrStatus::InvalidAsn
            || (self.contains(PolicyExtension::IrrStrictLength) && irr == IrrStatus::InvalidLength)
    }

    /// The path-blind import decision: the conjunction of every
    /// path-blind extension's verdict on `announcement` arriving from a
    /// neighbor that is, from the importing AS's perspective,
    /// `sender_rel`.
    ///
    /// The origin AS always "accepts" its own announcement; this is the
    /// import decision for learned routes. For routes produced by plain
    /// valley-free propagation this *is* the full decision — see
    /// [`RouteAttrs::CLEAN`].
    pub fn accepts(&self, announcement: &Announcement, sender_rel: Relationship) -> bool {
        if self.contains(PolicyExtension::Rov) && announcement.rpki.dropped_by_rov() {
            return false;
        }
        if self.contains(PolicyExtension::RouteServer)
            && (announcement.rpki.dropped_by_rov() || self.irr_invalid(announcement.irr))
        {
            return false;
        }
        let irr_applies = match sender_rel {
            Relationship::Customer => self.contains(PolicyExtension::IrrCustomer),
            Relationship::Peer => self.contains(PolicyExtension::IrrPeer),
            Relationship::Provider => false,
        };
        if irr_applies && self.irr_invalid(announcement.irr) {
            return false;
        }
        true
    }

    /// The full import decision: [`PolicySet::accepts`] AND every
    /// path-aware extension's verdict against `attrs`.
    ///
    /// `accepts_route(a, rel, &RouteAttrs::CLEAN)` is identical to
    /// `accepts(a, rel)` for every set — path-aware verdicts are
    /// vacuous on clean routes.
    pub fn accepts_route(
        &self,
        announcement: &Announcement,
        sender_rel: Relationship,
        attrs: &RouteAttrs,
    ) -> bool {
        if !self.accepts(announcement, sender_rel) {
            return false;
        }
        let lateral_or_up =
            matches!(sender_rel, Relationship::Customer | Relationship::Peer);
        if self.contains(PolicyExtension::OnlyToCustomers) && lateral_or_up && attrs.otc_marked {
            return false;
        }
        if self.contains(PolicyExtension::Aspa) && lateral_or_up && !attrs.customer_descent {
            return false;
        }
        if self.contains(PolicyExtension::PathEnd) && !attrs.origin_adjacent {
            return false;
        }
        true
    }
}

impl fmt::Debug for PolicySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PolicySet{{")?;
        let mut first = true;
        for e in self.iter() {
            if !first {
                write!(f, "|")?;
            }
            write!(f, "{}", e.name())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<PolicyExtension> for PolicySet {
    fn from_iter<I: IntoIterator<Item = PolicyExtension>>(iter: I) -> Self {
        iter.into_iter().fold(PolicySet(0), PolicySet::with)
    }
}

/// Policies for every AS, with a default for ASes not explicitly listed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicyTable {
    default: PolicySet,
    overrides: BTreeMap<Asn, PolicySet>,
}

impl PolicyTable {
    /// A table where every AS uses `default`.
    pub fn with_default(default: PolicySet) -> Self {
        PolicyTable { default, overrides: BTreeMap::new() }
    }

    /// Sets one AS's policy.
    pub fn set(&mut self, asn: Asn, policy: PolicySet) {
        self.overrides.insert(asn, policy);
    }

    /// The policy of `asn`.
    pub fn get(&self, asn: Asn) -> PolicySet {
        self.overrides.get(&asn).copied().unwrap_or(self.default)
    }

    /// Number of explicitly-set policies.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Iterates over the explicit overrides.
    pub fn overrides(&self) -> impl Iterator<Item = (Asn, PolicySet)> + '_ {
        self.overrides.iter().map(|(a, p)| (*a, *p))
    }

    /// The union of every policy in the table — the upper bound of what
    /// any AS might filter on. Drives acceptance-class widening and the
    /// path-aware forward fallback in `crate::table`.
    pub fn active_union(&self) -> PolicySet {
        self.overrides.values().fold(self.default, |u, p| u.union(*p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_net::Prefix;
    use manrs_rpki::RpkiStatus;

    fn ann(rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
        let p: Prefix = "10.0.0.0/16".parse().unwrap();
        Announcement::new(p, Asn(1), rpki, irr)
    }

    const ALL_RELS: [Relationship; 3] =
        [Relationship::Customer, Relationship::Peer, Relationship::Provider];

    #[test]
    fn open_policy_accepts_everything() {
        let a = ann(RpkiStatus::InvalidAsn, IrrStatus::InvalidAsn);
        for rel in ALL_RELS {
            assert!(PolicySet::OPEN.accepts(&a, rel));
            assert!(PolicySet::OPEN.accepts_route(&a, rel, &RouteAttrs::LEAKED));
        }
    }

    #[test]
    fn rov_drops_invalid_from_anyone() {
        let p = PolicySet::OPEN.with(PolicyExtension::Rov);
        let invalid_asn = ann(RpkiStatus::InvalidAsn, IrrStatus::NotFound);
        let invalid_len = ann(RpkiStatus::InvalidLength, IrrStatus::NotFound);
        let notfound = ann(RpkiStatus::NotFound, IrrStatus::NotFound);
        for rel in ALL_RELS {
            assert!(!p.accepts(&invalid_asn, rel));
            assert!(!p.accepts(&invalid_len, rel));
            assert!(p.accepts(&notfound, rel), "ROV must let NotFound through");
        }
    }

    #[test]
    fn irr_filtering_is_customer_scoped() {
        let p = PolicySet::MANRS_ISP;
        let irr_invalid = ann(RpkiStatus::NotFound, IrrStatus::InvalidAsn);
        assert!(!p.accepts(&irr_invalid, Relationship::Customer));
        assert!(p.accepts(&irr_invalid, Relationship::Peer));
        assert!(p.accepts(&irr_invalid, Relationship::Provider));
    }

    #[test]
    fn cdn_policy_filters_peers_too() {
        let p = PolicySet::MANRS_CDN;
        let irr_invalid = ann(RpkiStatus::NotFound, IrrStatus::InvalidAsn);
        assert!(!p.accepts(&irr_invalid, Relationship::Customer));
        assert!(!p.accepts(&irr_invalid, Relationship::Peer));
        assert!(p.accepts(&irr_invalid, Relationship::Provider));
    }

    #[test]
    fn invalid_length_passes_unless_strict() {
        let il = ann(RpkiStatus::NotFound, IrrStatus::InvalidLength);
        assert!(PolicySet::MANRS_ISP.accepts(&il, Relationship::Customer));
        let strict = PolicySet::MANRS_ISP.with(PolicyExtension::IrrStrictLength);
        assert!(!strict.accepts(&il, Relationship::Customer));
        // The modifier alone filters nothing.
        let alone = PolicySet::OPEN.with(PolicyExtension::IrrStrictLength);
        for rel in ALL_RELS {
            assert!(alone.accepts(&il, rel));
        }
    }

    #[test]
    fn route_server_validates_for_any_relationship() {
        let rs = PolicySet::ROUTE_SERVER;
        let rpki_bad = ann(RpkiStatus::InvalidAsn, IrrStatus::Valid);
        let irr_bad = ann(RpkiStatus::NotFound, IrrStatus::InvalidAsn);
        let clean = ann(RpkiStatus::NotFound, IrrStatus::NotFound);
        for rel in ALL_RELS {
            assert!(!rs.accepts(&rpki_bad, rel), "route server drops RPKI-Invalid from {rel:?}");
            assert!(!rs.accepts(&irr_bad, rel), "route server drops IRR-Invalid from {rel:?}");
            assert!(rs.accepts(&clean, rel));
        }
        // Invalid-length stays acceptable without the strict modifier.
        let irr_len = ann(RpkiStatus::NotFound, IrrStatus::InvalidLength);
        assert!(rs.accepts(&irr_len, Relationship::Peer));
        assert!(!rs
            .with(PolicyExtension::IrrStrictLength)
            .accepts(&irr_len, Relationship::Peer));
    }

    #[test]
    fn only_to_customers_rejects_marked_routes_from_below() {
        // RFC 9234: an OTC-marked route arriving from a customer or
        // lateral peer is a leak; from a provider it is ordinary
        // downstream propagation.
        let p = PolicySet::OPEN.with(PolicyExtension::OnlyToCustomers);
        let a = ann(RpkiStatus::Valid, IrrStatus::Valid);
        assert!(!p.accepts_route(&a, Relationship::Customer, &RouteAttrs::LEAKED));
        assert!(!p.accepts_route(&a, Relationship::Peer, &RouteAttrs::LEAKED));
        assert!(p.accepts_route(&a, Relationship::Provider, &RouteAttrs::LEAKED));
        for rel in ALL_RELS {
            assert!(p.accepts_route(&a, rel, &RouteAttrs::CLEAN));
        }
    }

    #[test]
    fn aspa_rejects_broken_customer_descent() {
        let p = PolicySet::OPEN.with(PolicyExtension::Aspa);
        let a = ann(RpkiStatus::Valid, IrrStatus::Valid);
        assert!(!p.accepts_route(&a, Relationship::Customer, &RouteAttrs::LEAKED));
        assert!(!p.accepts_route(&a, Relationship::Peer, &RouteAttrs::LEAKED));
        assert!(p.accepts_route(&a, Relationship::Provider, &RouteAttrs::LEAKED));
        for rel in ALL_RELS {
            assert!(p.accepts_route(&a, rel, &RouteAttrs::CLEAN));
        }
    }

    #[test]
    fn path_end_rejects_forged_adjacency() {
        let p = PolicySet::OPEN.with(PolicyExtension::PathEnd);
        let a = ann(RpkiStatus::Valid, IrrStatus::Valid);
        let forged = RouteAttrs { origin_adjacent: false, ..RouteAttrs::CLEAN };
        for rel in ALL_RELS {
            assert!(!p.accepts_route(&a, rel, &forged));
            assert!(p.accepts_route(&a, rel, &RouteAttrs::CLEAN));
        }
    }

    #[test]
    fn clean_attrs_reduce_to_path_blind_decision() {
        // accepts_route(CLEAN) ≡ accepts for every subset of extensions.
        for bits in 0u16..256 {
            let set: PolicySet = PolicyExtension::ALL
                .into_iter()
                .filter(|e| bits & e.bit() != 0)
                .collect();
            for rpki in [RpkiStatus::Valid, RpkiStatus::InvalidAsn, RpkiStatus::NotFound] {
                for irr in [IrrStatus::Valid, IrrStatus::InvalidAsn, IrrStatus::InvalidLength] {
                    let a = ann(rpki, irr);
                    for rel in ALL_RELS {
                        assert_eq!(
                            set.accepts_route(&a, rel, &RouteAttrs::CLEAN),
                            set.accepts(&a, rel),
                            "{set:?} {rpki:?} {irr:?} {rel:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn set_algebra_and_reads_path() {
        let s = PolicySet::of(&[PolicyExtension::Rov, PolicyExtension::IrrCustomer]);
        assert_eq!(s, PolicySet::MANRS_ISP);
        assert!(s.contains(PolicyExtension::Rov));
        assert!(!s.contains(PolicyExtension::IrrPeer));
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(!s.reads_path());
        assert!(s.with(PolicyExtension::OnlyToCustomers).reads_path());
        assert!(s.with(PolicyExtension::Aspa).reads_path());
        assert!(s.with(PolicyExtension::PathEnd).reads_path());
        assert_eq!(s.with(PolicyExtension::Aspa).without(PolicyExtension::Aspa), s);
        assert_eq!(s.union(PolicySet::MANRS_CDN), PolicySet::MANRS_CDN);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![
            PolicyExtension::Rov,
            PolicyExtension::IrrCustomer
        ]);
        assert!(PolicySet::OPEN.is_empty());
        for e in PolicyExtension::ALL {
            assert_eq!(PolicySet::OPEN.with(e).reads_path(), e.reads_path());
        }
    }

    #[test]
    fn table_defaults_overrides_and_union() {
        let mut table = PolicyTable::with_default(PolicySet::OPEN);
        table.set(Asn(5), PolicySet::MANRS_ISP);
        assert_eq!(table.get(Asn(5)), PolicySet::MANRS_ISP);
        assert_eq!(table.get(Asn(6)), PolicySet::OPEN);
        assert_eq!(table.override_count(), 1);
        assert_eq!(table.overrides().count(), 1);
        assert_eq!(table.active_union(), PolicySet::MANRS_ISP);
        table.set(Asn(7), PolicySet::ROUTE_SERVER.with(PolicyExtension::OnlyToCustomers));
        assert!(table.active_union().reads_path());
        assert!(table.active_union().contains(PolicyExtension::RouteServer));
    }
}
