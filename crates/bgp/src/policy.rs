//! Per-AS filtering policies.
//!
//! Two mechanisms matter to the paper:
//!
//! * **Route Origin Validation** (ROV): drop RPKI-Invalid announcements
//!   from *any* neighbor (RFC 6811 deployment; §9.1).
//! * **IRR customer filtering**: drop announcements learned from
//!   customers whose (prefix, origin) is IRR-Invalid — MANRS Action 1's
//!   "check the validity of customer announcements" implemented with IRR
//!   data (§9.2). CDNs extend this to peers ("ingress filtering on peers
//!   and customers").

use crate::announcement::Announcement;
use manrs_irr::IrrStatus;
use manrs_net::Asn;
use manrs_topology::Relationship;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One AS's import-filtering behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FilteringPolicy {
    /// Drop RPKI-Invalid (either kind) announcements from any neighbor.
    pub rov: bool,
    /// Drop IRR-Invalid announcements learned from customers.
    pub irr_filter_customers: bool,
    /// Extend IRR filtering to announcements learned from peers
    /// (the CDN ingress-filtering posture).
    pub irr_filter_peers: bool,
    /// Ablation knob: also treat IRR Invalid-length as filterable. The
    /// paper deliberately does *not* (§3); flipping this quantifies that
    /// design choice.
    pub irr_strict_length: bool,
}

impl FilteringPolicy {
    /// A network doing nothing — the common case in the wild.
    pub const OPEN: FilteringPolicy = FilteringPolicy {
        rov: false,
        irr_filter_customers: false,
        irr_filter_peers: false,
        irr_strict_length: false,
    };

    /// The full MANRS Action 1 posture for an ISP: ROV plus IRR customer
    /// filtering.
    pub const MANRS_ISP: FilteringPolicy = FilteringPolicy {
        rov: true,
        irr_filter_customers: true,
        irr_filter_peers: false,
        irr_strict_length: false,
    };

    /// The CDN posture: ingress filtering on peers as well.
    pub const MANRS_CDN: FilteringPolicy = FilteringPolicy {
        rov: true,
        irr_filter_customers: true,
        irr_filter_peers: true,
        irr_strict_length: false,
    };

    /// Whether this policy accepts `announcement` from a neighbor that
    /// is, from the importing AS's perspective, `sender_rel`.
    ///
    /// The origin AS always "accepts" its own announcement; this is the
    /// import decision for learned routes.
    pub fn accepts(&self, announcement: &Announcement, sender_rel: Relationship) -> bool {
        if self.rov && announcement.rpki.dropped_by_rov() {
            return false;
        }
        let irr_applies = match sender_rel {
            Relationship::Customer => self.irr_filter_customers,
            Relationship::Peer => self.irr_filter_peers,
            Relationship::Provider => false,
        };
        if irr_applies {
            let invalid = announcement.irr == IrrStatus::InvalidAsn
                || (self.irr_strict_length && announcement.irr == IrrStatus::InvalidLength);
            if invalid {
                return false;
            }
        }
        true
    }
}

/// Policies for every AS, with a default for ASes not explicitly listed.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PolicyTable {
    default: FilteringPolicy,
    overrides: BTreeMap<Asn, FilteringPolicy>,
}

impl PolicyTable {
    /// A table where every AS uses `default`.
    pub fn with_default(default: FilteringPolicy) -> Self {
        PolicyTable { default, overrides: BTreeMap::new() }
    }

    /// Sets one AS's policy.
    pub fn set(&mut self, asn: Asn, policy: FilteringPolicy) {
        self.overrides.insert(asn, policy);
    }

    /// The policy of `asn`.
    pub fn get(&self, asn: Asn) -> FilteringPolicy {
        self.overrides.get(&asn).copied().unwrap_or(self.default)
    }

    /// Number of explicitly-set policies.
    pub fn override_count(&self) -> usize {
        self.overrides.len()
    }

    /// Iterates over the explicit overrides.
    pub fn overrides(&self) -> impl Iterator<Item = (Asn, FilteringPolicy)> + '_ {
        self.overrides.iter().map(|(a, p)| (*a, *p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_net::Prefix;
    use manrs_rpki::RpkiStatus;

    fn ann(rpki: RpkiStatus, irr: IrrStatus) -> Announcement {
        let p: Prefix = "10.0.0.0/16".parse().unwrap();
        Announcement::new(p, Asn(1), rpki, irr)
    }

    #[test]
    fn open_policy_accepts_everything() {
        let a = ann(RpkiStatus::InvalidAsn, IrrStatus::InvalidAsn);
        for rel in [Relationship::Customer, Relationship::Peer, Relationship::Provider] {
            assert!(FilteringPolicy::OPEN.accepts(&a, rel));
        }
    }

    #[test]
    fn rov_drops_invalid_from_anyone() {
        let p = FilteringPolicy { rov: true, ..FilteringPolicy::OPEN };
        let invalid_asn = ann(RpkiStatus::InvalidAsn, IrrStatus::NotFound);
        let invalid_len = ann(RpkiStatus::InvalidLength, IrrStatus::NotFound);
        let notfound = ann(RpkiStatus::NotFound, IrrStatus::NotFound);
        for rel in [Relationship::Customer, Relationship::Peer, Relationship::Provider] {
            assert!(!p.accepts(&invalid_asn, rel));
            assert!(!p.accepts(&invalid_len, rel));
            assert!(p.accepts(&notfound, rel), "ROV must let NotFound through");
        }
    }

    #[test]
    fn irr_filtering_is_customer_scoped() {
        let p = FilteringPolicy::MANRS_ISP;
        let irr_invalid = ann(RpkiStatus::NotFound, IrrStatus::InvalidAsn);
        assert!(!p.accepts(&irr_invalid, Relationship::Customer));
        assert!(p.accepts(&irr_invalid, Relationship::Peer));
        assert!(p.accepts(&irr_invalid, Relationship::Provider));
    }

    #[test]
    fn cdn_policy_filters_peers_too() {
        let p = FilteringPolicy::MANRS_CDN;
        let irr_invalid = ann(RpkiStatus::NotFound, IrrStatus::InvalidAsn);
        assert!(!p.accepts(&irr_invalid, Relationship::Customer));
        assert!(!p.accepts(&irr_invalid, Relationship::Peer));
        assert!(p.accepts(&irr_invalid, Relationship::Provider));
    }

    #[test]
    fn invalid_length_passes_unless_strict() {
        let lenient = FilteringPolicy::MANRS_ISP;
        let il = ann(RpkiStatus::NotFound, IrrStatus::InvalidLength);
        assert!(lenient.accepts(&il, Relationship::Customer));
        let strict = FilteringPolicy { irr_strict_length: true, ..FilteringPolicy::MANRS_ISP };
        assert!(!strict.accepts(&il, Relationship::Customer));
    }

    #[test]
    fn table_defaults_and_overrides() {
        let mut table = PolicyTable::with_default(FilteringPolicy::OPEN);
        table.set(Asn(5), FilteringPolicy::MANRS_ISP);
        assert_eq!(table.get(Asn(5)), FilteringPolicy::MANRS_ISP);
        assert_eq!(table.get(Asn(6)), FilteringPolicy::OPEN);
        assert_eq!(table.override_count(), 1);
        assert_eq!(table.overrides().count(), 1);
    }
}
