//! AS-level BGP route propagation.
//!
//! The paper's raw input is the global routing table as seen from
//! RouteViews and RIPE RIS collectors (via the Internet Health Report).
//! This crate produces the same shape of data from a synthetic topology:
//!
//! * [`announcement`] — the unit of routing state: a (prefix, origin)
//!   pair annotated with its RPKI and IRR validity.
//! * [`policy`] — per-AS import policy as a composable [`PolicySet`]
//!   of [`PolicyExtension`]s: ROV and IRR customer/peer filtering (the
//!   behaviours MANRS Action 1 asks for), the IXP route-server
//!   posture, and path-aware defenses (ASPA, RFC 9234
//!   only-to-customers, path-end validation).
//! * [`mod@propagate`] — a deterministic Gao–Rexford propagation engine:
//!   valley-free economics (customer routes preferred over peer over
//!   provider; no transit between peers/providers), shortest-path and
//!   lowest-neighbor tie-breaks, with the filtering policies applied at
//!   import time.
//! * [`collector`] — vantage points in the style of RouteViews/RIS
//!   peers: the observed table is what the vantage ASes see, complete
//!   with the visibility limitations the paper discusses in §11.
//! * [`incident`] — routing-incident construction (origin hijack,
//!   subprefix hijack, route leak) for failure-injection experiments.
//! * [`dump`] — TABLE_DUMP2-style text serialization of collected RIBs,
//!   so tables can live on disk and be re-ingested like the real
//!   archives.
//! * [`table`] — the full pipeline: a set of announcements in, the
//!   collected RIB (per prefix-origin vantage AS paths) out, with
//!   per-(origin, filter-class) memoization so whole-table runs stay
//!   affordable. Collection is a [`CollectionPlan`]: `Forward` runs one
//!   propagation per class, `Reverse` runs one backward valley-free
//!   traversal per vantage (few-vantage regimes), `Auto` picks by
//!   comparing the two counts — all three produce bit-for-bit
//!   identical RIBs.
//! * [`parallel`] — a deterministic, order-preserving fork–join
//!   executor used by the table and dump pipelines; thread count is
//!   controlled by [`ParallelConfig`] / the `MANRS_THREADS` env var.
//! * [`pathpool`] — interned, deduplicated AS-path storage: collected
//!   RIBs hold one flat arena of distinct paths and observations refer
//!   to them by [`PathId`], so readers borrow `&[Asn]` slices instead
//!   of cloning `Vec<Vec<Asn>>` per observation.

pub mod announcement;
pub mod batch;
pub mod collector;
pub mod dump;
pub mod incident;
pub mod parallel;
pub mod pathpool;
pub mod policy;
pub mod propagate;
mod reverse;
pub mod stats;
pub mod table;

#[cfg(test)]
mod testutil;

pub use announcement::Announcement;
pub use batch::validate_pairs_batch;
pub use collector::{CollectedRib, Observation};
pub use dump::{parse_table_dump, parse_table_dump_with, write_table_dump};
pub use incident::{Incident, IncidentError};
pub use parallel::{par_map, par_map_with, ParallelConfig};
pub use pathpool::{PathId, PathInterner, PathPool};
pub use policy::{PolicyExtension, PolicySet, PolicyTable, RouteAttrs};
pub use propagate::{
    propagate, propagate_dense, propagate_dense_into, propagate_leak_into, DenseGraph,
    PropagationScratch, Provenance, RouteEntry, RoutingOutcome,
};
pub use stats::{moas_conflicts, table_stats, TableStats};
pub use table::{
    distinct_accept_classes, distinct_classes, CollectionPlan, CollectionStrategy, CostReport,
    TableCollector, VantageSet,
};
