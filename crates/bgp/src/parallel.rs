//! Deterministic fork–join parallelism for embarrassingly parallel
//! per-item work (table collection, snapshot validation, dump
//! re-validation).
//!
//! The executor is a small scoped-thread fan-out over `std::thread`:
//! workers claim fixed-size chunks of the input through an atomic
//! cursor, compute results tagged with their original index, and the
//! results are stitched back into input order before returning. Output
//! is therefore **bit-for-bit identical** to the serial map regardless
//! of thread count or scheduling — parallelism changes only wall-clock
//! time, never results.
//!
//! `rayon` would provide the same shape; it is deliberately not used so
//! the workspace keeps zero non-dev dependencies beyond serde/rand and
//! builds in hermetic environments (see DESIGN.md §2).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;

/// Controls how parallel stages fan out. The default (`0`/`0`) means
/// auto-detect threads and auto-size chunks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads. `0` means auto-detect from
    /// [`std::thread::available_parallelism`]; `1` forces the serial
    /// path (no threads spawned).
    pub threads: usize,
    /// Items claimed per grab. `0` means auto (items / threads / 4,
    /// clamped to `1..=256`). Larger chunks lower cursor contention;
    /// smaller chunks balance uneven per-item cost.
    pub chunk: usize,
}

impl ParallelConfig {
    /// Auto-detected thread count, auto chunk size.
    pub fn auto() -> Self {
        Self::default()
    }

    /// Serial execution (no threads spawned).
    pub fn serial() -> Self {
        ParallelConfig { threads: 1, chunk: 0 }
    }

    /// A fixed thread count with auto chunk size.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig { threads, chunk: 0 }
    }

    /// Reads `MANRS_THREADS` (`0` or unset/unparsable = auto).
    pub fn from_env() -> Self {
        let threads = std::env::var("MANRS_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        ParallelConfig { threads, chunk: 0 }
    }

    /// The number of workers that would actually run over `items`
    /// inputs: the configured (or detected) thread count, capped by the
    /// item count, and at least 1.
    pub fn effective_threads(&self, items: usize) -> usize {
        let hw = || thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let t = if self.threads == 0 { hw() } else { self.threads };
        t.min(items).max(1)
    }

    fn effective_chunk(&self, items: usize, threads: usize) -> usize {
        if self.chunk > 0 {
            return self.chunk;
        }
        (items / (threads * 4).max(1)).clamp(1, 256)
    }
}

/// Maps `f` over `items`, preserving input order in the output.
///
/// Equivalent to `items.iter().map(f).collect()` but fanned out over
/// the configured thread count. The output is identical to the serial
/// map for any thread/chunk configuration.
pub fn par_map<T, R, F>(cfg: &ParallelConfig, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_with(cfg, items, || (), move |(), item| f(item))
}

/// Like [`par_map`] but with per-worker state: `init` runs once per
/// worker thread and the state is passed (mutably) to every call that
/// worker makes. Use it to reuse expensive scratch buffers — e.g. one
/// [`crate::PropagationScratch`] per worker — without cross-thread
/// sharing.
pub fn par_map_with<T, R, S, I, F>(cfg: &ParallelConfig, items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, &T) -> R + Sync,
{
    let n = items.len();
    let threads = cfg.effective_threads(n);
    if threads <= 1 || n <= 1 {
        let mut state = init();
        return items.iter().map(|item| f(&mut state, item)).collect();
    }
    let chunk = cfg.effective_chunk(n, threads);

    let cursor = AtomicUsize::new(0);
    let mut buffers: Vec<Vec<(usize, R)>> = Vec::with_capacity(threads);
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(threads);
        for _ in 0..threads {
            handles.push(scope.spawn(|| {
                let mut state = init();
                let mut out: Vec<(usize, R)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    for (i, item) in items[start..end].iter().enumerate() {
                        out.push((start + i, f(&mut state, item)));
                    }
                }
                out
            }));
        }
        for handle in handles {
            buffers.push(handle.join().expect("parallel worker panicked"));
        }
    });

    // Stitch per-worker buffers back into input order.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    for buffer in buffers {
        for (idx, value) in buffer {
            debug_assert!(slots[idx].is_none(), "duplicate result for index {idx}");
            slots[idx] = Some(value);
        }
    }
    slots
        .into_iter()
        .map(|slot| slot.expect("every index produced exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        for threads in [0, 1, 2, 3, 8, 33] {
            let cfg = ParallelConfig::with_threads(threads);
            let got = par_map(&cfg, &items, |&x| x * x);
            let want: Vec<u64> = items.iter().map(|&x| x * x).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn par_map_with_reuses_worker_state() {
        let items: Vec<u32> = (0..257).collect();
        let cfg = ParallelConfig { threads: 4, chunk: 16 };
        let got = par_map_with(
            &cfg,
            &items,
            Vec::<u32>::new,
            |scratch, &x| {
                scratch.push(x);
                // State persists across calls on the same worker.
                x + scratch.len() as u32 - scratch.len() as u32
            },
        );
        assert_eq!(got, items);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let cfg = ParallelConfig::auto();
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&cfg, &empty, |&x| x).is_empty());
        assert_eq!(par_map(&cfg, &[7u8], |&x| x + 1), vec![8]);
    }

    #[test]
    fn oversized_chunk_and_thread_counts() {
        let items: Vec<usize> = (0..10).collect();
        let cfg = ParallelConfig { threads: 64, chunk: 1000 };
        assert_eq!(par_map(&cfg, &items, |&x| x), items);
    }

    #[test]
    fn effective_threads_caps_and_floors() {
        assert_eq!(ParallelConfig::serial().effective_threads(100), 1);
        assert_eq!(ParallelConfig::with_threads(8).effective_threads(3), 3);
        assert_eq!(ParallelConfig::with_threads(8).effective_threads(0), 1);
        assert!(ParallelConfig::auto().effective_threads(1000) >= 1);
    }
}
