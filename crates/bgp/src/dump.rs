//! Table-dump serialization of the collected RIB.
//!
//! RouteViews and RIPE RIS archive their peers' tables as MRT files,
//! conventionally rendered by `bgpdump` as pipe-separated
//! `TABLE_DUMP2`-style lines. This module writes and parses that text
//! rendering so a collected RIB can live on disk and be re-ingested by
//! the pipeline — the same workflow the paper runs against real
//! archives:
//!
//! ```text
//! TABLE_DUMP2|<unix-time>|B|<peer-asn>|<prefix>|<as-path>|IGP
//! ```
//!
//! One line per (vantage, prefix, origin) path. Registry statuses are
//! *not* serialized — they are derived data, recomputed against whatever
//! RPKI/IRR snapshot the reader pairs the dump with (exactly as the
//! paper recomputes statuses per snapshot date).

use crate::announcement::Announcement;
use crate::batch::validate_pairs_batch;
use crate::collector::{CollectedRib, Observation};
use crate::parallel::{par_map, ParallelConfig};
use crate::pathpool::{PathId, PathInterner};
use manrs_irr::{validate_irr, CompiledIrrIndex, IrrRegistry};
use manrs_net::{Asn, NetError, Prefix};
use manrs_rpki::{validate_origin, CompiledVrpIndex, VrpSet};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Below this many distinct (prefix, origin) keys, compiling the batch
/// indexes would cost more than it saves; the scalar per-key path runs
/// instead. Statuses are identical either way.
const BATCH_REVALIDATION_THRESHOLD: usize = 32;

/// Serializes a RIB as TABLE_DUMP2-style text, one line per vantage
/// path. `timestamp` is the dump's nominal unix time.
pub fn write_table_dump(rib: &CollectedRib, timestamp: u64) -> String {
    let mut out = String::new();
    for obs in rib.visible() {
        for path in rib.paths_of(obs) {
            let path_str = path
                .iter()
                .map(|a| a.value().to_string())
                .collect::<Vec<_>>()
                .join(" ");
            let peer = path.first().expect("paths are non-empty");
            let _ = writeln!(
                out,
                "TABLE_DUMP2|{timestamp}|B|{}|{}|{path_str}|IGP",
                peer.value(),
                obs.prefix
            );
        }
    }
    out
}

/// Parses TABLE_DUMP2-style text back into a RIB, re-validating every
/// (prefix, origin) against the given registries.
///
/// Paths are grouped per (prefix, origin); the vantage set is inferred
/// from the peer column. Lines that are empty or start with `#` are
/// skipped; malformed lines are errors.
pub fn parse_table_dump(
    text: &str,
    vrps: &VrpSet,
    irr: &IrrRegistry,
) -> Result<CollectedRib, NetError> {
    parse_table_dump_with(text, vrps, irr, &ParallelConfig::from_env())
}

/// [`parse_table_dump`] with an explicit parallelism configuration for
/// the per-(prefix, origin) RPKI/IRR re-validation, which dominates
/// parse time on large dumps. Line parsing and grouping stay serial
/// (they are cheap and order-sensitive); validation fans out and is
/// stitched back in key order, so output is identical for any thread
/// count.
pub fn parse_table_dump_with(
    text: &str,
    vrps: &VrpSet,
    irr: &IrrRegistry,
    cfg: &ParallelConfig,
) -> Result<CollectedRib, NetError> {
    // Paths are interned as lines parse: re-ingested dumps dedup the
    // same way collected tables do.
    let mut interner = PathInterner::new();
    let mut grouped: BTreeMap<(Prefix, Asn), Vec<PathId>> = BTreeMap::new();
    let mut vantages: Vec<Asn> = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('|').collect();
        let bad = || NetError::InvalidAddress(line.to_owned());
        if parts.len() != 7 || parts[0] != "TABLE_DUMP2" {
            return Err(bad());
        }
        let peer: Asn = parts[3].parse()?;
        let prefix: Prefix = parts[4].parse()?;
        let path: Vec<Asn> = parts[5]
            .split_whitespace()
            .map(|t| t.parse::<Asn>())
            .collect::<Result<_, _>>()?;
        if path.is_empty() || path[0] != peer {
            return Err(bad());
        }
        let origin = *path.last().expect("non-empty path");
        if !vantages.contains(&peer) {
            vantages.push(peer);
        }
        grouped.entry((prefix, origin)).or_default().push(interner.intern(&path));
    }
    // Re-validate every (prefix, origin) in parallel, then zip the
    // statuses back with the grouped paths; both run in the BTreeMap's
    // key order, so pairing by position is exact.
    let keys: Vec<(Prefix, Asn)> = grouped.keys().copied().collect();
    let statuses = if keys.len() >= BATCH_REVALIDATION_THRESHOLD {
        let rpki_index = CompiledVrpIndex::build(vrps);
        let irr_index = CompiledIrrIndex::build(irr);
        validate_pairs_batch(cfg, &rpki_index, &irr_index, &keys)
    } else {
        par_map(cfg, &keys, |(prefix, origin)| {
            (validate_origin(vrps, prefix, *origin), validate_irr(irr, prefix, *origin))
        })
    };
    let observations = grouped
        .into_iter()
        .zip(statuses)
        .map(|(((prefix, origin), paths), (rpki, irr))| Observation {
            prefix,
            origin,
            rpki,
            irr,
            paths,
        })
        .collect();
    Ok(CollectedRib::from_parts(vantages, observations, interner.into_pool()))
}

/// Round-trip helper: the announcements recoverable from a dump (one
/// per visible (prefix, origin), statuses re-derived).
pub fn announcements_of(rib: &CollectedRib) -> Vec<Announcement> {
    rib.visible().map(|o| o.announcement()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyTable;
    use crate::table::TableCollector;
    use crate::testutil::topo;
    use manrs_irr::IrrStatus;
    use manrs_rpki::RpkiStatus;

    fn rib() -> CollectedRib {
        let t = topo(4, &[(1, 2), (2, 3), (1, 4)], &[]);
        let anns = vec![
            Announcement::new(
                "10.0.0.0/16".parse().unwrap(),
                Asn(3),
                RpkiStatus::NotFound,
                IrrStatus::NotFound,
            ),
            Announcement::new(
                "10.1.0.0/16".parse().unwrap(),
                Asn(4),
                RpkiStatus::NotFound,
                IrrStatus::NotFound,
            ),
        ];
        TableCollector::new(&t, &PolicyTable::default(), &[Asn(1), Asn(4)]).plan().collect(&anns)
    }

    #[test]
    fn dump_format_lines() {
        let dump = write_table_dump(&rib(), 1_651_363_200);
        let first = dump.lines().next().unwrap();
        assert!(first.starts_with("TABLE_DUMP2|1651363200|B|1|10.0.0.0/16|1 2 3|IGP"));
        assert_eq!(dump.lines().count(), 4); // 2 announcements × 2 vantages
    }

    #[test]
    fn round_trip_preserves_paths_and_revalidates() {
        let original = rib();
        let dump = write_table_dump(&original, 0);
        let parsed =
            parse_table_dump(&dump, &VrpSet::new(), &IrrRegistry::new()).unwrap();
        assert_eq!(parsed.visible_count(), original.visible_count());
        for obs in original.visible() {
            let back = parsed
                .observations
                .iter()
                .find(|o| o.prefix == obs.prefix && o.origin == obs.origin)
                .expect("observation survives round trip");
            // Ids come from different pools; compare materialized paths.
            let mut a = original.materialize_paths(obs);
            let mut b = parsed.materialize_paths(back);
            a.sort();
            b.sort();
            assert_eq!(a, b);
            // Statuses recomputed against empty registries: NotFound.
            assert_eq!(back.rpki, RpkiStatus::NotFound);
        }
        assert_eq!(announcements_of(&parsed).len(), 2);
    }

    #[test]
    fn revalidation_against_real_registries() {
        let original = rib();
        let dump = write_table_dump(&original, 0);
        let vrps: VrpSet =
            [manrs_rpki::Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(3), 16)]
                .into_iter()
                .collect();
        let parsed = parse_table_dump(&dump, &vrps, &IrrRegistry::new()).unwrap();
        let obs = parsed
            .observations
            .iter()
            .find(|o| o.origin == Asn(3))
            .unwrap();
        assert_eq!(obs.rpki, RpkiStatus::Valid);
    }

    #[test]
    fn rejects_malformed_lines() {
        let reg = IrrRegistry::new();
        let vrps = VrpSet::new();
        for bad in [
            "NOT_A_DUMP|0|B|1|10.0.0.0/16|1 2 3|IGP",
            "TABLE_DUMP2|0|B|1|10.0.0.0/16|1 2 3", // missing column
            "TABLE_DUMP2|0|B|9|10.0.0.0/16|1 2 3|IGP", // peer != path head
            "TABLE_DUMP2|0|B|1|banana|1 2 3|IGP",
            "TABLE_DUMP2|0|B|1|10.0.0.0/16||IGP", // empty path
        ] {
            assert!(parse_table_dump(bad, &vrps, &reg).is_err(), "{bad}");
        }
        // Comments and blanks are fine.
        let ok = parse_table_dump("# header\n\n", &vrps, &reg).unwrap();
        assert_eq!(ok.visible_count(), 0);
    }
}
