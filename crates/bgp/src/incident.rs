//! Routing-incident construction: origin hijacks, subprefix hijacks,
//! and route leaks.
//!
//! A prefix origin hijack (§2.1) is an announcement of someone else's
//! prefix with the attacker as origin, in two classic flavours:
//! exact-prefix (competes on path length) and more-specific (wins by
//! longest-prefix match wherever it propagates — and, when the victim
//! registered a ROA without slack, is RPKI Invalid-length for everyone
//! running ROV). A route leak re-exports the victim's *own* route
//! beyond its valley-free envelope — the announcement is genuine, and
//! only path-aware defenses (RFC 9234 OTC, ASPA) catch it in flight;
//! see [`crate::propagate::propagate_leak_into`].

use crate::announcement::Announcement;
use manrs_irr::{validate_irr, IrrRegistry};
use manrs_net::{Asn, Prefix};
use manrs_rpki::{validate_origin, VrpSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A routing incident to inject into a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Incident {
    /// The attacker announces the victim's prefix as-is with itself as
    /// origin.
    OriginHijack {
        /// The prefix under attack (as announced by the victim).
        victim_prefix: Prefix,
        /// The attacking origin AS.
        attacker: Asn,
    },
    /// The attacker announces a one-bit-longer subprefix (the low
    /// half) with itself as origin.
    SubprefixHijack {
        /// The prefix under attack (as announced by the victim).
        victim_prefix: Prefix,
        /// The attacking origin AS.
        attacker: Asn,
    },
    /// The leaker re-exports the victim's route to every neighbor,
    /// violating the valley-free export rule.
    RouteLeak {
        /// The prefix whose route is leaked.
        victim_prefix: Prefix,
        /// The legitimate origin of the prefix.
        victim_origin: Asn,
        /// The AS re-exporting beyond its export envelope.
        leaker: Asn,
    },
}

/// Why an [`Incident`] cannot produce its announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentError {
    /// A subprefix hijack of a host route: a `/32` (or `/128`) has no
    /// more-specific to announce.
    CannotSplit {
        /// The indivisible victim prefix.
        prefix: Prefix,
    },
}

impl fmt::Display for IncidentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IncidentError::CannotSplit { prefix } => {
                write!(f, "host route {prefix} cannot be split into a more-specific")
            }
        }
    }
}

impl std::error::Error for IncidentError {}

impl Incident {
    /// The prefix the incident announcement carries: the forged
    /// subprefix for a subprefix hijack, the victim's prefix otherwise.
    ///
    /// Errors with [`IncidentError::CannotSplit`] when a subprefix
    /// hijack targets a host route — there is no quiet fallback to the
    /// exact prefix.
    pub fn forged_prefix(&self) -> Result<Prefix, IncidentError> {
        match *self {
            Incident::OriginHijack { victim_prefix, .. }
            | Incident::RouteLeak { victim_prefix, .. } => Ok(victim_prefix),
            Incident::SubprefixHijack { victim_prefix, .. } => {
                let child = match victim_prefix {
                    Prefix::V4(p) => p.children().map(|(lo, _)| Prefix::V4(lo)),
                    Prefix::V6(p) => p.children().map(|(lo, _)| Prefix::V6(lo)),
                };
                child.ok_or(IncidentError::CannotSplit { prefix: victim_prefix })
            }
        }
    }

    /// The origin AS of the incident announcement: the attacker for
    /// hijacks, the legitimate victim origin for a route leak (the
    /// leaked route is genuine — the leaker forwards, it does not
    /// originate).
    pub fn origin(&self) -> Asn {
        match *self {
            Incident::OriginHijack { attacker, .. }
            | Incident::SubprefixHijack { attacker, .. } => attacker,
            Incident::RouteLeak { victim_origin, .. } => victim_origin,
        }
    }

    /// The misbehaving AS: the hijacking origin, or the leaker.
    pub fn perpetrator(&self) -> Asn {
        match *self {
            Incident::OriginHijack { attacker, .. }
            | Incident::SubprefixHijack { attacker, .. } => attacker,
            Incident::RouteLeak { leaker, .. } => leaker,
        }
    }

    /// Builds the incident announcement, validating it against the
    /// real registries exactly as any other announcement would be.
    ///
    /// For hijacks this is the forged announcement (typically RPKI
    /// Invalid-ASN when the victim registered a ROA); for a route leak
    /// it is the victim's own announcement — registry-clean, which is
    /// exactly why only path-aware defenses stop it.
    pub fn announcement(
        &self,
        vrps: &VrpSet,
        irr: &IrrRegistry,
    ) -> Result<Announcement, IncidentError> {
        let prefix = self.forged_prefix()?;
        let origin = self.origin();
        Ok(Announcement::new(
            prefix,
            origin,
            validate_origin(vrps, &prefix, origin),
            validate_irr(irr, &prefix, origin),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manrs_irr::IrrDatabase;
    use manrs_net::Date;
    use manrs_rpki::{RpkiStatus, Vrp};

    fn vrps() -> VrpSet {
        // Victim AS1 registered 10.0.0.0/16 maxlen 16.
        [Vrp::new("10.0.0.0/16".parse().unwrap(), Asn(1), 16)]
            .into_iter()
            .collect()
    }

    fn irr() -> IrrRegistry {
        let mut db = IrrDatabase::new("RADB", None);
        db.add_route(manrs_irr::RouteObject {
            prefix: "10.0.0.0/16".parse().unwrap(),
            origin: Asn(1),
            descr: String::new(),
            mnt_by: "M".into(),
            source: "RADB".into(),
            last_modified: Date::ymd(2022, 1, 1),
        });
        let mut reg = IrrRegistry::new();
        reg.add_database(db);
        reg
    }

    #[test]
    fn exact_hijack_is_rpki_invalid_asn() {
        let h = Incident::OriginHijack {
            victim_prefix: "10.0.0.0/16".parse().unwrap(),
            attacker: Asn(666),
        };
        let a = h.announcement(&vrps(), &irr()).unwrap();
        assert_eq!(a.prefix, "10.0.0.0/16".parse::<Prefix>().unwrap());
        assert_eq!(a.rpki, RpkiStatus::InvalidAsn);
        assert!(a.is_manrs_unconformant());
        assert_eq!(h.origin(), Asn(666));
        assert_eq!(h.perpetrator(), Asn(666));
    }

    #[test]
    fn subprefix_hijack_forges_subprefix() {
        let h = Incident::SubprefixHijack {
            victim_prefix: "10.0.0.0/16".parse().unwrap(),
            attacker: Asn(666),
        };
        let a = h.announcement(&vrps(), &irr()).unwrap();
        assert_eq!(a.prefix, "10.0.0.0/17".parse::<Prefix>().unwrap());
        assert_eq!(a.rpki, RpkiStatus::InvalidAsn);
    }

    #[test]
    fn self_deaggregation_is_invalid_length_not_asn() {
        // The victim de-aggregating its own ROA-covered prefix beyond
        // maxLength: Invalid length, the misconfiguration case.
        let h = Incident::SubprefixHijack {
            victim_prefix: "10.0.0.0/16".parse().unwrap(),
            attacker: Asn(1),
        };
        let a = h.announcement(&vrps(), &irr()).unwrap();
        assert_eq!(a.rpki, RpkiStatus::InvalidLength);
        // IRR: same origin, more specific than the route object.
        assert_eq!(a.irr, manrs_irr::IrrStatus::InvalidLength);
        assert!(a.is_manrs_conformant());
    }

    #[test]
    fn host_route_cannot_deaggregate() {
        // A /32 victim has no more-specific: the incident reports the
        // impossibility instead of quietly announcing the exact prefix.
        let v4 = Incident::SubprefixHijack {
            victim_prefix: "10.0.0.1/32".parse().unwrap(),
            attacker: Asn(666),
        };
        assert_eq!(
            v4.forged_prefix(),
            Err(IncidentError::CannotSplit { prefix: "10.0.0.1/32".parse().unwrap() })
        );
        assert!(v4.announcement(&vrps(), &irr()).is_err());
        let v6 = Incident::SubprefixHijack {
            victim_prefix: "2001:db8::1/128".parse().unwrap(),
            attacker: Asn(666),
        };
        assert!(matches!(v6.forged_prefix(), Err(IncidentError::CannotSplit { .. })));
        // The error is printable and a host-route *exact* hijack is fine.
        let msg = v4.forged_prefix().unwrap_err().to_string();
        assert!(msg.contains("10.0.0.1/32"), "{msg}");
        let exact = Incident::OriginHijack {
            victim_prefix: "10.0.0.1/32".parse().unwrap(),
            attacker: Asn(666),
        };
        assert_eq!(exact.forged_prefix().unwrap(), "10.0.0.1/32".parse::<Prefix>().unwrap());
    }

    #[test]
    fn route_leak_announcement_is_the_victims_own() {
        let l = Incident::RouteLeak {
            victim_prefix: "10.0.0.0/16".parse().unwrap(),
            victim_origin: Asn(1),
            leaker: Asn(9),
        };
        let a = l.announcement(&vrps(), &irr()).unwrap();
        assert_eq!(a.origin, Asn(1));
        assert_eq!(a.rpki, RpkiStatus::Valid);
        assert_eq!(a.irr, manrs_irr::IrrStatus::Valid);
        assert_eq!(l.origin(), Asn(1));
        assert_eq!(l.perpetrator(), Asn(9));
    }
}
