//! Descriptive statistics over a collected RIB.
//!
//! The sanity numbers every measurement paper reports before the real
//! analysis: table size, origin counts, MOAS prefixes (multiple origin
//! ASes — legitimate multi-homing or a hijack in progress), path-length
//! distribution, and per-announcement visibility.

use crate::collector::CollectedRib;
use manrs_net::{Asn, Prefix};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Summary statistics of a collected RIB.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableStats {
    /// Visible (prefix, origin) pairs.
    pub prefix_origins: usize,
    /// Distinct visible prefixes.
    pub prefixes: usize,
    /// Distinct origin ASes.
    pub origins: usize,
    /// Prefixes announced by more than one origin (MOAS).
    pub moas_prefixes: usize,
    /// Mean AS-path length over all vantage paths (hops counted as
    /// path elements).
    pub mean_path_length: f64,
    /// Longest observed AS path.
    pub max_path_length: usize,
    /// Mean fraction of vantage points seeing each visible pair.
    pub mean_visibility: f64,
}

/// Computes [`TableStats`] for a RIB.
pub fn table_stats(rib: &CollectedRib) -> TableStats {
    let mut prefixes: BTreeSet<Prefix> = BTreeSet::new();
    let mut origins: BTreeSet<Asn> = BTreeSet::new();
    let mut origins_per_prefix: BTreeMap<Prefix, BTreeSet<Asn>> = BTreeMap::new();
    let mut pair_count = 0usize;
    let mut path_count = 0usize;
    let mut path_len_sum = 0usize;
    let mut max_path = 0usize;
    let mut visibility_sum = 0.0;
    let vantage_count = rib.vantages.len().max(1);
    for obs in rib.visible() {
        pair_count += 1;
        prefixes.insert(obs.prefix);
        origins.insert(obs.origin);
        origins_per_prefix.entry(obs.prefix).or_default().insert(obs.origin);
        visibility_sum += obs.paths.len() as f64 / vantage_count as f64;
        for path in rib.paths_of(obs) {
            path_count += 1;
            path_len_sum += path.len();
            max_path = max_path.max(path.len());
        }
    }
    TableStats {
        prefix_origins: pair_count,
        prefixes: prefixes.len(),
        origins: origins.len(),
        moas_prefixes: origins_per_prefix.values().filter(|s| s.len() > 1).count(),
        mean_path_length: if path_count == 0 {
            0.0
        } else {
            path_len_sum as f64 / path_count as f64
        },
        max_path_length: max_path,
        mean_visibility: if pair_count == 0 { 0.0 } else { visibility_sum / pair_count as f64 },
    }
}

/// The MOAS (multiple-origin) prefixes with their origin sets — hijacks
/// and sibling mis-originations surface here.
pub fn moas_conflicts(rib: &CollectedRib) -> BTreeMap<Prefix, Vec<Asn>> {
    let mut origins_per_prefix: BTreeMap<Prefix, BTreeSet<Asn>> = BTreeMap::new();
    for obs in rib.visible() {
        origins_per_prefix.entry(obs.prefix).or_default().insert(obs.origin);
    }
    origins_per_prefix
        .into_iter()
        .filter(|(_, origins)| origins.len() > 1)
        .map(|(p, origins)| (p, origins.into_iter().collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::announcement::Announcement;
    use crate::policy::PolicyTable;
    use crate::table::TableCollector;
    use crate::testutil::topo;
    use manrs_irr::IrrStatus;
    use manrs_rpki::RpkiStatus;

    fn rib() -> CollectedRib {
        let t = topo(4, &[(1, 2), (2, 3), (2, 4)], &[]);
        let p: Prefix = "10.0.0.0/16".parse().unwrap();
        let q: Prefix = "10.1.0.0/16".parse().unwrap();
        let anns = vec![
            // MOAS on p: both 3 and 4 announce it.
            Announcement::new(p, Asn(3), RpkiStatus::Valid, IrrStatus::Valid),
            Announcement::new(p, Asn(4), RpkiStatus::InvalidAsn, IrrStatus::NotFound),
            Announcement::new(q, Asn(3), RpkiStatus::NotFound, IrrStatus::Valid),
        ];
        TableCollector::new(&t, &PolicyTable::default(), &[Asn(1)]).plan().collect(&anns)
    }

    #[test]
    fn counts_and_moas() {
        let stats = table_stats(&rib());
        assert_eq!(stats.prefix_origins, 3);
        assert_eq!(stats.prefixes, 2);
        assert_eq!(stats.origins, 2);
        assert_eq!(stats.moas_prefixes, 1);
        assert_eq!(stats.max_path_length, 3); // 1-2-3
        assert!((stats.mean_path_length - 3.0).abs() < 1e-12);
        assert!((stats.mean_visibility - 1.0).abs() < 1e-12); // single vantage sees all
    }

    #[test]
    fn moas_conflict_listing() {
        let conflicts = moas_conflicts(&rib());
        assert_eq!(conflicts.len(), 1);
        let origins = &conflicts[&"10.0.0.0/16".parse().unwrap()];
        assert_eq!(origins, &vec![Asn(3), Asn(4)]);
    }

    #[test]
    fn empty_rib() {
        let stats = table_stats(&CollectedRib::default());
        assert_eq!(stats.prefix_origins, 0);
        assert_eq!(stats.mean_path_length, 0.0);
        assert_eq!(stats.mean_visibility, 0.0);
        assert!(moas_conflicts(&CollectedRib::default()).is_empty());
    }
}
