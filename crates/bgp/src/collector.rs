//! Route collectors and the observed RIB.
//!
//! RouteViews and RIPE RIS peer with a set of vantage ASes and archive
//! whatever those ASes' best routes are. The paper's §11 is explicit that
//! everything downstream inherits this partial view; [`CollectedRib`] is
//! that view for the simulator: per (prefix, origin), the AS paths seen
//! from each vantage point that has a route.

use crate::announcement::Announcement;
use crate::propagate::{DenseGraph, RoutingOutcome};
use manrs_irr::IrrStatus;
use manrs_net::{Asn, Prefix};
use manrs_rpki::RpkiStatus;
use serde::{Deserialize, Serialize};

/// One collected table entry: an announcement and the vantage paths that
/// observed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS.
    pub origin: Asn,
    /// RPKI status carried from the announcement.
    pub rpki: RpkiStatus,
    /// IRR status carried from the announcement.
    pub irr: IrrStatus,
    /// AS paths, one per vantage point that had a route, each running
    /// vantage → … → origin.
    pub paths: Vec<Vec<Asn>>,
}

impl Observation {
    /// `true` if at least one vantage point saw the announcement.
    pub fn is_visible(&self) -> bool {
        !self.paths.is_empty()
    }

    /// The announcement view of this observation.
    pub fn announcement(&self) -> Announcement {
        Announcement::new(self.prefix, self.origin, self.rpki, self.irr)
    }
}

/// The observed routing table: every announcement with its vantage paths.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CollectedRib {
    /// The vantage ASes the collector peers with.
    pub vantages: Vec<Asn>,
    /// All observations, visible or not (callers filter).
    pub observations: Vec<Observation>,
    /// Visible-observation count, fixed at construction. Observations
    /// are never mutated after a RIB is built, so the count is computed
    /// once instead of on every [`CollectedRib::visible_count`] call.
    #[serde(default)]
    visible: usize,
}

impl CollectedRib {
    /// Builds a RIB, counting visible observations once up front.
    pub fn new(vantages: Vec<Asn>, observations: Vec<Observation>) -> Self {
        let visible = observations.iter().filter(|o| o.is_visible()).count();
        CollectedRib { vantages, observations, visible }
    }

    /// Observations with at least one vantage path.
    pub fn visible(&self) -> impl Iterator<Item = &Observation> {
        self.observations.iter().filter(|o| o.is_visible())
    }

    /// Number of visible (prefix, origin) pairs (cached at
    /// construction).
    pub fn visible_count(&self) -> usize {
        self.visible
    }
}

/// Extracts the vantage paths for one propagated announcement.
pub fn observe(
    graph: &DenseGraph,
    outcome: &RoutingOutcome,
    announcement: &Announcement,
    vantages: &[Asn],
) -> Observation {
    let paths = vantages
        .iter()
        .filter_map(|v| outcome.as_path(graph, *v))
        .collect();
    Observation {
        prefix: announcement.prefix,
        origin: announcement.origin,
        rpki: announcement.rpki,
        irr: announcement.irr,
        paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyTable;
    use crate::propagate::propagate;
    use manrs_net::Rir;
    use manrs_topology::{AsInfo, AsTopology, NetworkKind, OrgId};

    fn topo() -> AsTopology {
        // 1 -> 2 -> 3; 4 isolated.
        let mut t = AsTopology::new();
        for asn in 1..=4 {
            t.add_as(AsInfo {
                asn: Asn(asn),
                org: OrgId(asn),
                rir: Rir::Arin,
                country: "US".into(),
                kind: NetworkKind::Transit,
            });
        }
        t.add_provider_customer(Asn(1), Asn(2));
        t.add_provider_customer(Asn(2), Asn(3));
        t
    }

    fn ann() -> Announcement {
        Announcement::new(
            "10.0.0.0/16".parse().unwrap(),
            Asn(3),
            RpkiStatus::Valid,
            IrrStatus::Valid,
        )
    }

    #[test]
    fn observe_collects_vantage_paths() {
        let t = topo();
        let a = ann();
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        let obs = observe(&g, &o, &a, &[Asn(1), Asn(4)]);
        assert!(obs.is_visible());
        // AS4 is isolated: only AS1's path appears.
        assert_eq!(obs.paths, vec![vec![Asn(1), Asn(2), Asn(3)]]);
        assert_eq!(obs.announcement(), a);
    }

    #[test]
    fn invisible_when_no_vantage_reached() {
        let t = topo();
        let a = ann();
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        let obs = observe(&g, &o, &a, &[Asn(4)]);
        assert!(!obs.is_visible());
    }

    #[test]
    fn rib_visibility_helpers() {
        let t = topo();
        let a = ann();
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        let rib = CollectedRib::new(
            vec![Asn(1), Asn(4)],
            vec![observe(&g, &o, &a, &[Asn(1)]), observe(&g, &o, &a, &[Asn(4)])],
        );
        assert_eq!(rib.observations.len(), 2);
        assert_eq!(rib.visible_count(), 1);
    }
}
