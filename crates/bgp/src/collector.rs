//! Route collectors and the observed RIB.
//!
//! RouteViews and RIPE RIS peer with a set of vantage ASes and archive
//! whatever those ASes' best routes are. The paper's §11 is explicit that
//! everything downstream inherits this partial view; [`CollectedRib`] is
//! that view for the simulator: per (prefix, origin), the AS paths seen
//! from each vantage point that has a route.
//!
//! Paths are not stored per observation: a RIB owns one [`PathPool`]
//! and observations hold [`PathId`] handles into it. Announcements in
//! the same (origin, filter-class) equivalence class share the exact
//! same ids, and readers borrow `&[Asn]` slices via
//! [`CollectedRib::path`] / [`CollectedRib::paths_of`] without cloning.

use crate::announcement::Announcement;
use crate::pathpool::{PathId, PathInterner, PathPool};
use crate::propagate::{DenseGraph, RoutingOutcome};
use manrs_irr::IrrStatus;
use manrs_net::{Asn, Prefix};
use manrs_rpki::RpkiStatus;
use serde::{Deserialize, Serialize};

/// One collected table entry: an announcement and the vantage paths that
/// observed it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Observation {
    /// The announced prefix.
    pub prefix: Prefix,
    /// The origin AS.
    pub origin: Asn,
    /// RPKI status carried from the announcement.
    pub rpki: RpkiStatus,
    /// IRR status carried from the announcement.
    pub irr: IrrStatus,
    /// Interned AS paths, one per vantage point that had a route, each
    /// running vantage → … → origin. Resolve against the owning RIB's
    /// [`PathPool`] (see [`CollectedRib::path`]).
    pub paths: Vec<PathId>,
}

impl Observation {
    /// `true` if at least one vantage point saw the announcement.
    pub fn is_visible(&self) -> bool {
        !self.paths.is_empty()
    }

    /// The announcement view of this observation.
    pub fn announcement(&self) -> Announcement {
        Announcement::new(self.prefix, self.origin, self.rpki, self.irr)
    }
}

/// The observed routing table: every announcement with its vantage paths,
/// interned in one shared [`PathPool`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "CollectedRibSerde")]
pub struct CollectedRib {
    /// The vantage ASes the collector peers with.
    pub vantages: Vec<Asn>,
    /// All observations, visible or not (callers filter).
    pub observations: Vec<Observation>,
    /// The shared path arena every observation's [`PathId`]s point into.
    pool: PathPool,
    /// Visible-observation count, fixed at construction. Observations
    /// are never mutated after a RIB is built, so the count is computed
    /// once instead of on every [`CollectedRib::visible_count`] call.
    /// Derived: recomputed on deserialization, never trusted from disk.
    #[serde(skip)]
    visible: usize,
}

/// Serialized form of a RIB. The cached visible count is derived data;
/// deserializing through this shadow recomputes it (a plain
/// `#[serde(default)]` used to leave it at 0 after a round trip,
/// silently breaking `visible_count()`).
#[derive(Deserialize)]
struct CollectedRibSerde {
    vantages: Vec<Asn>,
    observations: Vec<Observation>,
    #[serde(default)]
    pool: PathPool,
}

impl From<CollectedRibSerde> for CollectedRib {
    fn from(raw: CollectedRibSerde) -> Self {
        CollectedRib::from_parts(raw.vantages, raw.observations, raw.pool)
    }
}

impl CollectedRib {
    /// Builds a RIB from its parts, counting visible observations once
    /// up front. Every [`PathId`] in `observations` must have been
    /// minted by `pool`'s interner.
    pub fn from_parts(
        vantages: Vec<Asn>,
        observations: Vec<Observation>,
        pool: PathPool,
    ) -> Self {
        let visible = observations.iter().filter(|o| o.is_visible()).count();
        CollectedRib { vantages, observations, pool, visible }
    }

    /// Observations with at least one vantage path.
    pub fn visible(&self) -> impl Iterator<Item = &Observation> {
        self.observations.iter().filter(|o| o.is_visible())
    }

    /// Number of visible (prefix, origin) pairs (cached at
    /// construction).
    pub fn visible_count(&self) -> usize {
        self.visible
    }

    /// The shared path arena.
    pub fn pool(&self) -> &PathPool {
        &self.pool
    }

    /// Resolves one interned path, zero-copy.
    pub fn path(&self, id: PathId) -> &[Asn] {
        self.pool.path(id)
    }

    /// The AS paths of one observation as borrowed slices.
    pub fn paths_of<'s>(
        &'s self,
        obs: &'s Observation,
    ) -> impl Iterator<Item = &'s [Asn]> + 's {
        obs.paths.iter().map(move |&id| self.pool.path(id))
    }

    /// Compatibility accessor: the observation's paths as owned vectors
    /// (the pre-pool `Vec<Vec<Asn>>` representation).
    pub fn materialize_paths(&self, obs: &Observation) -> Vec<Vec<Asn>> {
        self.paths_of(obs).map(<[Asn]>::to_vec).collect()
    }
}

/// Extracts the vantage paths for one propagated announcement, interning
/// them into `interner` (shared across calls so identical paths dedup to
/// the same [`PathId`]).
pub fn observe(
    graph: &DenseGraph,
    outcome: &RoutingOutcome,
    announcement: &Announcement,
    vantages: &[Asn],
    interner: &mut PathInterner,
) -> Observation {
    let paths = vantages
        .iter()
        .filter_map(|v| outcome.as_path(graph, *v))
        .map(|p| interner.intern(&p))
        .collect();
    Observation {
        prefix: announcement.prefix,
        origin: announcement.origin,
        rpki: announcement.rpki,
        irr: announcement.irr,
        paths,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyTable;
    use crate::propagate::propagate;
    use crate::testutil::topo;

    fn ann() -> Announcement {
        Announcement::new(
            "10.0.0.0/16".parse().unwrap(),
            Asn(3),
            RpkiStatus::Valid,
            IrrStatus::Valid,
        )
    }

    // 1 -> 2 -> 3; 4 isolated.
    fn chain() -> manrs_topology::AsTopology {
        topo(4, &[(1, 2), (2, 3)], &[])
    }

    #[test]
    fn observe_collects_vantage_paths() {
        let t = chain();
        let a = ann();
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        let mut interner = PathInterner::new();
        let obs = observe(&g, &o, &a, &[Asn(1), Asn(4)], &mut interner);
        assert!(obs.is_visible());
        // AS4 is isolated: only AS1's path appears.
        assert_eq!(obs.paths.len(), 1);
        assert_eq!(
            interner.pool().path(obs.paths[0]),
            &[Asn(1), Asn(2), Asn(3)]
        );
        assert_eq!(obs.announcement(), a);
    }

    #[test]
    fn invisible_when_no_vantage_reached() {
        let t = chain();
        let a = ann();
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        let mut interner = PathInterner::new();
        let obs = observe(&g, &o, &a, &[Asn(4)], &mut interner);
        assert!(!obs.is_visible());
        assert!(interner.pool().is_empty());
    }

    #[test]
    fn rib_visibility_helpers() {
        let t = chain();
        let a = ann();
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        let mut interner = PathInterner::new();
        let seen = observe(&g, &o, &a, &[Asn(1)], &mut interner);
        let unseen = observe(&g, &o, &a, &[Asn(4)], &mut interner);
        let rib = CollectedRib::from_parts(
            vec![Asn(1), Asn(4)],
            vec![seen, unseen],
            interner.into_pool(),
        );
        assert_eq!(rib.observations.len(), 2);
        assert_eq!(rib.visible_count(), 1);
        let obs = &rib.observations[0];
        assert_eq!(rib.materialize_paths(obs), vec![vec![Asn(1), Asn(2), Asn(3)]]);
        assert_eq!(rib.paths_of(obs).count(), 1);
    }

    #[test]
    fn identical_paths_share_one_interned_copy() {
        let t = chain();
        let a = ann();
        let (g, o) = propagate(&t, &PolicyTable::default(), &a);
        let mut interner = PathInterner::new();
        let first = observe(&g, &o, &a, &[Asn(1)], &mut interner);
        let second = observe(&g, &o, &a, &[Asn(1)], &mut interner);
        assert_eq!(first.paths, second.paths);
        assert_eq!(interner.pool().len(), 1);
    }
}
